"""HTTP wiring + the ``repro-serve`` CLI.

The service is deliberately stdlib-only: a ``ThreadingHTTPServer``
accepts requests (one handler thread per connection), the handler
validates the wire request, asks the :class:`Scheduler` for admission,
and blocks on the job handle — the admission bound keeps the number of
such blocked threads finite.  Execution happens in the worker-pool
processes; the serving process never runs untrusted MiniML itself.

Endpoints:

* ``POST /v1/run``      — one compile-and-run job (wire schema:
  :mod:`repro.server.protocol`).  ``503`` + ``Retry-After`` on a full
  queue, tenant quota, or drain, ``400`` on a malformed request,
  ``200`` with a structured status otherwise (a *job* failure is not a
  transport failure).
* ``GET  /v1/stats``    — fleet metrics + scheduler/pool/cache state.
* ``GET  /v1/health``   — readiness *and* liveness: ``200`` when
  admitting, ``503`` (with the same JSON body) while draining.  Load
  balancers point here; so does ``ServerClient.wait_ready``.
* ``GET  /v1/healthz``  — bare liveness (kept for old probes/scripts).
* ``POST /v1/admin/drain``   — graceful drain: stop admitting (503 +
  ``Retry-After``), wait for in-flight jobs.  Body: ``{"timeout": s}``.
* ``POST /v1/admin/resume``  — reopen admission after a drain.
* ``POST /v1/admin/restart`` — rolling worker restart: recycle the
  workers one slot at a time, in-flight jobs finishing first.

Clients mark retransmissions with an ``X-Repro-Attempt`` header (1 for
the first try); the server counts attempts > 1 into the fleet ``retries``
metric — retry storms show up on the dashboard, not just in latency.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time
from pathlib import Path
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .metrics import MetricsRegistry
from .pool import WorkerPool
from .protocol import PROTOCOL, invalid_response, rejection_response
from .scheduler import Rejection, Scheduler
from .worker import execute_job, init_worker

__all__ = ["ServerConfig", "ReproServer", "main"]

#: Watchdog slack on top of a request's own deadline: the in-interpreter
#: deadline should always fire first; the pool timeout only catches a
#: worker that is wedged outside the interpreter loop.
DEADLINE_GRACE_SECONDS = 10.0


@dataclass(frozen=True)
class ServerConfig:
    """Everything ``repro-serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8752
    #: Worker processes executing jobs.
    workers: int = 4
    #: Admission bound: maximum in-flight (queued + running) jobs.
    queue_capacity: int = 32
    #: On-disk compile cache directory (``None`` = memory-only workers).
    cache_dir: Optional[str] = None
    #: Fleet-wide content-addressed artifact store directory shared by
    #: every node (``None`` = this node is not part of a fleet).
    artifact_dir: Optional[str] = None
    #: Operator-facing node name (defaults to ``host:port`` after bind);
    #: the gateway reports it in ``X-Repro-Node`` attribution.
    node_name: Optional[str] = None
    #: Default per-job watchdog when the request sets no deadline.
    job_timeout_seconds: float = 120.0
    #: Worker start method (``spawn`` is the safe default under threads).
    mp_context: str = "spawn"
    #: Per-tenant token-bucket quota: admissions/second per tenant
    #: (``None`` disables quotas entirely).
    tenant_rate: Optional[float] = None
    #: Burst ceiling of each tenant's bucket.
    tenant_burst: float = 8.0


class ReproServer:
    """The assembled service: pool + scheduler + metrics + HTTP."""

    def __init__(self, config: ServerConfig = ServerConfig()) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.pool = WorkerPool(
            execute_job,
            size=config.workers,
            initializer=init_worker,
            initargs=(config.cache_dir, config.artifact_dir),
            job_timeout=config.job_timeout_seconds,
            mp_context=config.mp_context,
        )
        self.scheduler = Scheduler(self.pool, config.queue_capacity)
        if config.tenant_rate is not None:
            self.scheduler.configure_quota(config.tenant_rate, config.tenant_burst)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = time.monotonic()
        self._job_ids = iter(range(1, 1 << 62))

    # -- request handling (transport-independent) ----------------------------

    def handle_run(self, request: object, attempt: int = 1) -> Tuple[int, dict]:
        """Returns ``(http_status, response_dict)``.  ``attempt`` is the
        client's 1-based try counter (``X-Repro-Attempt``); values above
        1 are counted as fleet retries."""
        if attempt > 1:
            self.metrics.record_retry()
        problem = None
        tenant = None
        if not isinstance(request, dict):
            problem = f"request is {type(request).__name__}, expected object"
        elif request.get("schema") != PROTOCOL:
            problem = f"schema is {request.get('schema')!r}, expected {PROTOCOL!r}"
        elif not isinstance(request.get("source"), str):
            problem = "source must be a string"
        else:
            tenant = request.get("tenant")
            if tenant is not None and not isinstance(tenant, str):
                problem = "tenant must be a string"
        if problem is not None:
            # Full validation happens in the worker; the cheap checks here
            # keep garbage out of the queue without compiling anything.
            response = invalid_response(problem)
            self.metrics.record_response(response)
            return 400, response

        timeout = self.config.job_timeout_seconds
        runtime = request.get("runtime") or {}
        deadline = runtime.get("deadline_seconds") if isinstance(runtime, dict) else None
        if (isinstance(deadline, (int, float)) and not isinstance(deadline, bool)
                and deadline > 0):
            timeout = float(deadline) + DEADLINE_GRACE_SECONDS

        start = time.perf_counter()
        outcome = self.scheduler.submit(request, timeout=timeout, tenant=tenant)
        if isinstance(outcome, Rejection):
            self.metrics.record_rejection()
            response = rejection_response(
                outcome.retry_after, outcome.depth, outcome.capacity,
                reason=outcome.reason,
            )
            return 503, response

        result = outcome.result()  # blocks this handler thread only
        wall = time.perf_counter() - start
        self.scheduler.finish(result, wall)
        job_id = f"job-{next(self._job_ids)}"
        if result.ok:
            response = dict(result.value)
        else:
            # Pool-level failure (crash/timeout/pickling error): the
            # worker never produced a wire response, synthesize one.
            from .protocol import make_response

            status = result.status if result.status in ("crashed", "timeout") else "error"
            response = make_response(status, error=result.error)
        response["id"] = job_id
        self.metrics.record_response(response, wall_seconds=wall)
        return 200, response

    # -- resilience operations -----------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful drain: stop admitting (new submissions get 503 +
        ``Retry-After``) and wait for every in-flight job to finish.
        Admission stays closed until :meth:`resume`."""
        self.metrics.record_drain()
        return self.scheduler.drain(timeout=timeout)

    def resume(self) -> None:
        """Reopen admission after :meth:`drain`."""
        self.scheduler.resume()

    def rolling_restart(self, timeout_per_worker: float = 60.0) -> int:
        """Recycle every worker process one slot at a time; in-flight
        jobs finish on the old processes first, and the pool never loses
        more than one worker's capacity at once.  Safe under live
        traffic — that is the point."""
        recycled = self.pool.rolling_restart(timeout_per_worker)
        self.metrics.record_rolling_restart()
        return recycled

    def health_snapshot(self) -> Tuple[int, dict]:
        """Readiness + liveness.  ``live`` is trivially true if we can
        answer at all; ``ready`` means admission is open.  The HTTP
        status mirrors ``ready`` so load balancers and
        ``wait_ready`` need no body parsing."""
        draining = self.scheduler.draining
        body = {
            "schema": PROTOCOL,
            "ok": True,
            "live": True,
            "ready": not draining,
            "draining": draining,
            "node": self.node_name,
            "workers": {"size": self.pool.size, "busy": self.pool.busy},
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }
        return (200 if body["ready"] else 503), body

    @property
    def node_name(self) -> str:
        if self.config.node_name:
            return self.config.node_name
        if self._httpd is not None:
            host, port = self._httpd.server_address[:2]
            return f"{host}:{port}"
        return f"{self.config.host}:{self.config.port}"

    def stats_snapshot(self) -> dict:
        return {
            "schema": PROTOCOL,
            "node": self.node_name,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "config": {
                "workers": self.config.workers,
                "queue_capacity": self.config.queue_capacity,
                "cache_dir": self.config.cache_dir,
                "artifact_dir": self.config.artifact_dir,
                "job_timeout_seconds": self.config.job_timeout_seconds,
            },
            "scheduler": self.scheduler.snapshot(),
            "pool": self.pool.stats(),
            "metrics": self.metrics.snapshot(),
        }

    # -- HTTP ----------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and serve in a background thread; returns the bound
        address (useful with ``port=0``)."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, fmt, *args):  # quiet by default
                pass

            def _send_json(self, status: int, payload: dict,
                           extra_headers: Optional[dict] = None) -> None:
                body = json.dumps(payload).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for key, value in (extra_headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                if self.path == "/v1/healthz":
                    self._send_json(200, {"ok": True, "schema": PROTOCOL})
                elif self.path == "/v1/health":
                    status, body = server.health_snapshot()
                    headers = {"Retry-After": "1"} if status == 503 else None
                    self._send_json(status, body, headers)
                elif self.path == "/v1/stats":
                    self._send_json(200, server.stats_snapshot())
                else:
                    self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

            def _read_body(self):
                length = int(self.headers.get("Content-Length", "0"))
                return json.loads(self.rfile.read(length) or b"null")

            def do_POST(self) -> None:
                if self.path in ("/v1/admin/drain", "/v1/admin/resume",
                                 "/v1/admin/restart"):
                    self._admin(self.path.rsplit("/", 1)[1])
                    return
                if self.path != "/v1/run":
                    self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
                    return
                try:
                    request = self._read_body()
                except (ValueError, OSError) as exc:
                    response = invalid_response(f"bad request body: {exc}")
                    self._send_json(400, response)
                    return
                try:
                    attempt = int(self.headers.get("X-Repro-Attempt", "1"))
                except ValueError:
                    attempt = 1
                status, response = server.handle_run(request, attempt=attempt)
                headers = None
                if status == 503:
                    headers = {"Retry-After": str(response.get("retry_after", 1))}
                self._send_json(status, response, headers)

            def _admin(self, op: str) -> None:
                try:
                    body = self._read_body()
                except (ValueError, OSError):
                    body = None
                body = body if isinstance(body, dict) else {}
                try:
                    if op == "drain":
                        timeout = body.get("timeout", 30.0)
                        timeout = float(timeout) if timeout is not None else None
                        drained = server.drain(timeout=timeout)
                        result = {"ok": drained, "op": "drain",
                                  "in_flight": server.scheduler.in_flight}
                    elif op == "resume":
                        server.resume()
                        result = {"ok": True, "op": "resume"}
                    else:
                        recycled = server.rolling_restart(
                            float(body.get("timeout_per_worker", 60.0)))
                        result = {"ok": True, "op": "restart",
                                  "recycled": recycled}
                except (TimeoutError, RuntimeError, ValueError, TypeError) as exc:
                    self._send_json(500, {"ok": False, "op": op,
                                          "error": {"type": type(exc).__name__,
                                                    "message": str(exc)}})
                    return
                self._send_json(200, result)

        self._httpd = ThreadingHTTPServer((self.config.host, self.config.port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="repro-serve-http"
        )
        self._thread.start()
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        self.pool.close()

    def __enter__(self) -> "ReproServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _default_cache_name() -> str:
    """Per-user cache directory name under the shared system temp dir.
    A fixed name would let any other local user pre-create the path and
    plant pickles the workers would unpickle; the uid suffix plus the
    ownership check in :class:`~repro.server.diskcache.DiskCompileCache`
    closes that off."""
    try:
        owner = str(os.getuid())
    except AttributeError:  # pragma: no cover - non-POSIX
        import getpass

        owner = getpass.getuser()
    return f"repro-compile-cache-{owner}"


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve MiniML compile-and-run jobs over HTTP "
        "(wire schema repro-server/v1; see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8752,
                        help="TCP port (0 = pick a free one; default 8752)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (default 4)")
    parser.add_argument("--queue", type=int, default=32, metavar="N",
                        help="admission bound: max in-flight jobs (default 32)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk compile cache directory (default: a "
                             "per-user dir under the system temp dir; "
                             "--no-disk-cache disables)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="run workers memory-only (no warm restarts)")
    parser.add_argument("--artifact-dir", default=None, metavar="DIR",
                        help="fleet-wide content-addressed artifact store "
                             "shared by every node (default: none — this "
                             "node caches only for itself)")
    parser.add_argument("--name", default=None, metavar="NODE",
                        help="node name reported in health/stats and used "
                             "by gateways for X-Repro-Node attribution "
                             "(default host:port)")
    parser.add_argument("--job-timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="watchdog for jobs with no deadline (default 120)")
    parser.add_argument("--tenant-rate", type=float, default=None,
                        metavar="PER_SECOND",
                        help="per-tenant token-bucket quota in admissions/s "
                             "(default: quotas disabled)")
    parser.add_argument("--tenant-burst", type=float, default=8.0, metavar="N",
                        help="per-tenant burst ceiling (default 8)")
    args = parser.parse_args(argv)

    cache_dir: Optional[str]
    if args.no_disk_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = str(Path(tempfile.gettempdir()) / _default_cache_name())

    server = ReproServer(ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue,
        cache_dir=cache_dir,
        artifact_dir=args.artifact_dir,
        node_name=args.name,
        job_timeout_seconds=args.job_timeout,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
    ))
    host, port = server.start()
    print(f"repro-serve: listening on http://{host}:{port} "
          f"({args.workers} workers, queue {args.queue}, "
          f"cache {cache_dir or 'memory-only'}"
          + (f", artifacts {args.artifact_dir}" if args.artifact_dir else "")
          + ")",
          file=sys.stderr, flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("repro-serve: shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Fleet topology: the consistent-hash ring and the node directory.

``repro.server`` up to PR 6 is one node: one scheduler, one worker
pool, one disk cache.  A fleet is N of those behind a gateway, and the
piece that makes a fleet better than N independent nodes is *placement*:
requests are routed by consistent hash of the **compile-cache key**
(sha256 of the source plus every compilation-relevant flag — the same
content address every cache layer uses), so repeat submissions of a
program land on the node whose worker LRUs and disk cache are already
hot.  Adding or removing a node remaps only ~1/N of the key space
(the consistent-hashing contract), so scaling the fleet never causes a
fleet-wide cold start — and whatever does move cold-starts against the
shared :mod:`~repro.server.artifacts` store, not against the compiler.

:class:`HashRing` is the classic construction: each node is hashed onto
the ring at ``vnodes`` pseudo-random points (sha256 of ``node#i``), a
key belongs to the first node point clockwise from the key's own hash.
Determinism matters more than usual here — the chaos/failover proofs
replay schedules against the ring — so the ring has **no** randomness
beyond sha256 and no dependence on insertion order.

:class:`NodeState` is the gateway's per-node health book-keeping
(routing counts, consecutive failures, draining flag), kept separate
from the ring so membership (who *could* serve) and health (who *can
right now*) compose: routing excludes sick nodes without changing the
ring, so a node's keys come straight back to it on recovery.

:class:`LocalFleet` boots an entire fleet in one process — N
:class:`~repro.server.app.ReproServer` nodes with private disk caches,
one shared artifact store, one gateway — and is what the tests, the
serving smoke, and ``repro-loadgen --fleet`` all drive.
"""

from __future__ import annotations

import bisect
import hashlib
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["HashRing", "NodeState", "route_key", "LocalFleet", "DEFAULT_VNODES"]

#: Virtual nodes per physical node.  More vnodes = smoother key
#: distribution (relative spread ~ 1/sqrt(vnodes)) at O(vnodes * N)
#: ring size; 128 keeps the chi-square uniformity test comfortably
#: bounded for small fleets.
DEFAULT_VNODES = 128


def _point(label: str) -> int:
    """A ring position: the top 64 bits of sha256.  Stable across
    processes, hosts, and Python versions (no ``hash()``)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing over node names with virtual nodes.

    ``node_for(key)`` is total for a non-empty ring; ``preference(key)``
    is the deterministic failover order — the distinct nodes in ring
    order starting at the key's position, which is exactly the order a
    gateway should try nodes in when the primary is down (each fallback
    is itself consistent: every gateway replica computes the same one).
    """

    def __init__(self, nodes: Iterable[str] = (),
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("HashRing needs vnodes >= 1")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def add(self, node: str) -> bool:
        """Add a node (``vnodes`` ring points).  Returns ``False`` when
        already present."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return False
        self._nodes.add(node)
        for i in range(self.vnodes):
            bisect.insort(self._points, (_point(f"{node}#{i}"), node))
        return True

    def remove(self, node: str) -> bool:
        """Remove a node and its ring points.  Returns ``False`` when it
        was not a member."""
        if node not in self._nodes:
            return False
        self._nodes.discard(node)
        self._points = [pt for pt in self._points if pt[1] != node]
        return True

    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def node_for(self, key: str, exclude: Iterable[str] = ()) -> Optional[str]:
        """The owner of ``key``: the first node point at or clockwise
        from the key's hash, skipping ``exclude``\\ d nodes.  ``None``
        only when every member is excluded (or the ring is empty)."""
        excluded = set(exclude)
        start = bisect.bisect_left(self._points, (_point(key), ""))
        n = len(self._points)
        for step in range(n):
            _, node = self._points[(start + step) % n]
            if node not in excluded:
                return node
        return None

    def preference(self, key: str) -> list[str]:
        """Every member exactly once, in failover order for ``key``:
        the owner first, then each next *distinct* node clockwise."""
        seen: list[str] = []
        start = bisect.bisect_left(self._points, (_point(key), ""))
        n = len(self._points)
        for step in range(n):
            _, node = self._points[(start + step) % n]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self._nodes):
                    break
        return seen


@dataclass
class NodeState:
    """One backend node as the gateway sees it.  ``name`` is the ring
    identity (and the ``X-Repro-Node`` attribution value); ``url`` is
    where to reach it."""

    name: str
    url: str
    healthy: bool = True
    draining: bool = False
    consecutive_failures: int = 0
    routed: int = 0
    failed: int = 0
    failovers_absorbed: int = 0
    last_error: Optional[str] = None
    last_checked: float = field(default=0.0)

    @property
    def routable(self) -> bool:
        """Should new requests be sent here?  Draining nodes are
        excluded (they would 503 anyway), dead nodes until a health
        check revives them."""
        return self.healthy and not self.draining

    def mark_ok(self, draining: bool = False) -> None:
        self.healthy = True
        self.draining = draining
        self.consecutive_failures = 0
        self.last_error = None
        self.last_checked = time.monotonic()

    def mark_failed(self, error: str) -> None:
        self.healthy = False
        self.consecutive_failures += 1
        self.last_error = error
        self.last_checked = time.monotonic()

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "url": self.url,
            "healthy": self.healthy,
            "draining": self.draining,
            "consecutive_failures": self.consecutive_failures,
            "routed": self.routed,
            "failed": self.failed,
            "failovers_absorbed": self.failovers_absorbed,
            "last_error": self.last_error,
        }


def route_key(request: object) -> str:
    """The routing key of a wire request: the compile-cache key
    (sha256 of source + compilation flags), so requests for the same
    compilation always hash to the same node and pin its warm caches.
    Malformed requests fall back to hashing whatever source text is
    there — they still route *consistently* (and the node will 400 them
    with the real validation message)."""
    if isinstance(request, dict):
        source = request.get("source")
        if isinstance(source, str):
            try:
                from ..cache import cache_key
                from .protocol import request_flags

                return repr(cache_key(source, request_flags(request)))
            except Exception:  # noqa: BLE001 - bad flags: route by source
                return "source:" + hashlib.sha256(
                    source.encode("utf-8")).hexdigest()
    return "invalid-request"


class LocalFleet:
    """A whole fleet in one process: N nodes (each its own worker pool
    and private disk cache), one shared artifact store, one gateway.

    This is the test/bench harness shape — production runs one
    ``repro-serve`` per host plus ``repro-gateway`` — but it is the
    *same* code: real HTTP between gateway and nodes, real worker
    processes, a real on-disk artifact store.
    """

    def __init__(self, nodes: int = 2, workers_per_node: int = 2,
                 queue_capacity: int = 64, base_dir: Optional[str] = None,
                 job_timeout_seconds: float = 120.0,
                 tenant_rate: Optional[float] = None,
                 tenant_burst: float = 8.0,
                 failover_retries: int = 2,
                 health_interval: float = 0.5) -> None:
        if nodes < 1:
            raise ValueError("LocalFleet needs at least one node")
        self.n_nodes = nodes
        self.workers_per_node = workers_per_node
        self.queue_capacity = queue_capacity
        self.job_timeout_seconds = job_timeout_seconds
        self.tenant_rate = tenant_rate
        self.tenant_burst = tenant_burst
        self.failover_retries = failover_retries
        self.health_interval = health_interval
        self._own_dir = base_dir is None
        self.base_dir = Path(base_dir or tempfile.mkdtemp(prefix="repro-fleet-"))
        self.artifact_dir = str(self.base_dir / "artifacts")
        self.servers: list = []
        self.node_urls: list[str] = []
        self.gateway = None
        self.gateway_url: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> str:
        """Boot every node, then the gateway over them; returns the
        gateway base URL."""
        from .app import ReproServer, ServerConfig

        for i in range(self.n_nodes):
            self._boot_node(ReproServer, ServerConfig, i)
        from .gateway import Gateway, GatewayConfig

        self.gateway = Gateway(GatewayConfig(
            port=0,
            nodes=tuple(self.node_urls),
            failover_retries=self.failover_retries,
            health_interval=self.health_interval,
        ))
        host, port = self.gateway.start()
        self.gateway_url = f"http://{host}:{port}"
        return self.gateway_url

    def _boot_node(self, server_cls, config_cls, index: int) -> str:
        cache_dir = self.base_dir / f"node{index}-cache"
        server = server_cls(config_cls(
            port=0,
            workers=self.workers_per_node,
            queue_capacity=self.queue_capacity,
            cache_dir=str(cache_dir),
            artifact_dir=self.artifact_dir,
            node_name=f"node{index}",
            job_timeout_seconds=self.job_timeout_seconds,
            tenant_rate=self.tenant_rate,
            tenant_burst=self.tenant_burst,
        ))
        host, port = server.start()
        url = f"http://{host}:{port}"
        self.servers.append(server)
        self.node_urls.append(url)
        return url

    def add_node(self) -> str:
        """Boot one more node against the same artifact store and join
        it to the gateway's ring (the cold-node-join story: its first
        hot-program request is a fleet-store hit, not a recompile)."""
        from .app import ReproServer, ServerConfig

        url = self._boot_node(ReproServer, ServerConfig, len(self.servers))
        if self.gateway is not None:
            self.gateway.join(url)
        return url

    def kill_node(self, index: int) -> str:
        """Hard-stop one node (chaos-style: in-flight requests die with
        the connection).  The gateway discovers the death passively on
        the next forward (or actively on the next health poll) and fails
        the node's keys over to ring successors."""
        server = self.servers[index]
        url = self.node_urls[index]
        server.close()
        return url

    def close(self) -> None:
        if self.gateway is not None:
            self.gateway.close()
            self.gateway = None
        for server in self.servers:
            try:
                server.close()
            except Exception:  # noqa: BLE001 - already killed is fine
                pass
        self.servers.clear()

    def __enter__(self) -> "LocalFleet":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The job executor — the function every pool worker runs.

:func:`execute_job` turns one wire request into one wire response,
never raising: compile errors, runtime faults (the Figure 1 dangling
pointer included), resource-limit hits, and even interpreter-level
``RecursionError`` all map to structured responses carrying the
``repro-run`` exit-code semantics, so a misbehaving program can fail
its own job but never wedge the queue.  (A program that kills the whole
worker process is the pool's problem — the manager reaps, respawns,
and synthesizes a ``crashed`` response upstream.)

Compilation goes through three cache layers shared with every other job:

* the process-wide in-memory LRU (:func:`repro.cache.default_cache`) —
  hot across jobs on the *same* worker;
* the on-disk :class:`~repro.server.diskcache.DiskCompileCache`
  configured by :func:`init_worker` — shared across workers *and*
  across server restarts;
* the fleet-wide :class:`~repro.server.artifacts.ArtifactStore` (when
  the node is part of a fleet) — shared across *nodes*, so one
  compilation anywhere serves everywhere and a cold node warms
  instantly.  Hits are reported per layer (``memory_hit`` /
  ``disk_hit`` / ``fleet_hit``) so the fleet metrics can tell them
  apart.

Per-request limits and fault plans are applied as run-time overrides on
the cached program (never baked into the cached compilation), exactly
like ``repro-run`` flags.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, Tuple

from ..cache import cache_key, default_cache
from ..config import CompilerFlags
from ..core.errors import InterpreterLimit, ReproError
from ..pipeline import CompiledProgram, compile_program
from ..runtime.values import show_value
from .artifacts import ArtifactStore, open_store
from .diskcache import DiskCompileCache
from .protocol import (
    make_response,
    request_flags,
    request_runtime_overrides,
    validate_request,
)

__all__ = ["init_worker", "execute_job", "compile_with_caches", "worker_cache_snapshot"]

#: Worker-process state installed by :func:`init_worker`.
_DISK_CACHE: Optional[DiskCompileCache] = None
_ARTIFACTS: Optional[ArtifactStore] = None


def init_worker(disk_cache_dir: Optional[str] = None,
                artifact_dir: Optional[str] = None) -> None:
    """Pool initializer: attach the node's on-disk cache and the fleet
    artifact store (either may be absent).

    An unusable directory — most importantly one :class:`DiskCompileCache`
    refuses to trust (foreign owner, group/other-writable) — degrades the
    worker to the layers above it instead of wedging it at init: a
    hostile pre-planted directory must cost us a cache layer, not the
    service.
    """
    global _DISK_CACHE, _ARTIFACTS
    _DISK_CACHE = None
    if disk_cache_dir:
        try:
            _DISK_CACHE = DiskCompileCache(disk_cache_dir)
        except OSError as exc:
            print(
                f"repro-serve worker: disk cache disabled ({exc}); "
                f"running memory-only",
                file=sys.stderr,
                flush=True,
            )
    _ARTIFACTS = open_store(artifact_dir)


def _quarantine_evictions() -> int:
    total = 0
    for layer in (_DISK_CACHE, _ARTIFACTS):
        if layer is not None:
            total += layer.quarantine_evictions
    return total


def compile_with_caches(
    source: str, flags: CompilerFlags, use_cache: bool = True
) -> Tuple[CompiledProgram, Optional[dict]]:
    """Compile through memory -> node disk -> fleet store -> pipeline,
    reporting which layer hit.  A hit at any lower layer is promoted
    into every layer above it; a fresh compile is written through to all
    of them, so the next node to ask anywhere in the fleet hits.  With
    ``use_cache=False`` no lookup happens at all and the info dict is
    ``None`` — the response then carries no ``cache`` field, so the
    metrics registry does not count a lookup that never occurred (which
    would deflate the fleet hit rate)."""
    if not use_cache:
        return compile_program(source, flags=flags, cache=False), None
    info = {"memory_hit": False, "disk_hit": False, "fleet_hit": False}
    evictions_before = _quarantine_evictions()
    memory = default_cache()
    key = cache_key(source, flags)
    if key in memory:
        info["memory_hit"] = True
    else:
        from .diskcache import CORRUPT

        loaded = None
        if _DISK_CACHE is not None:
            loaded, status = _DISK_CACHE.get_ex(key)
            if loaded is not None:
                info["disk_hit"] = True
            elif status == CORRUPT:
                # The entry failed its digest and was quarantined; the
                # compile-or-fetch below re-stores a good one
                # (self-healing).  Flag it so the fleet metrics count
                # the detection.
                info["quarantined"] = True
        if loaded is None and _ARTIFACTS is not None:
            loaded, status = _ARTIFACTS.get_ex(key)
            if loaded is not None:
                # Fleet hit: some other node compiled this program.
                # Promote into the node's own disk cache so the next
                # cold worker on *this* node stays off the shared store.
                info["fleet_hit"] = True
                if _DISK_CACHE is not None:
                    _DISK_CACHE.put(key, loaded)
            elif status == CORRUPT:
                info["quarantined"] = True
        if loaded is not None:
            memory.put(key, loaded)
    # compile_program does the actual lookup (or compile-and-store) so
    # hit wrappers carry the caller's flags and the LRU counters see
    # exactly one lookup per job.
    program = compile_program(source, flags=flags, cache=memory)
    if not (info["memory_hit"] or info["disk_hit"] or info["fleet_hit"]):
        if _DISK_CACHE is not None:
            _DISK_CACHE.put(key, program)
        if _ARTIFACTS is not None:
            _ARTIFACTS.put(key, program)
    evicted = _quarantine_evictions() - evictions_before
    if evicted > 0:
        info["quarantine_evicted"] = evicted
    return program, info


def worker_cache_snapshot() -> dict:
    """Cache counters of *this* worker process (shipped home piggybacked
    on responses is overkill; the metrics registry instead derives fleet
    hit rates from the per-response ``cache`` dict)."""
    snap = {"memory": default_cache().snapshot()}
    if _DISK_CACHE is not None:
        snap["disk"] = _DISK_CACHE.snapshot()
    if _ARTIFACTS is not None:
        snap["artifacts"] = _ARTIFACTS.snapshot()
    return snap


def execute_job(request: dict) -> dict:
    """One request in, one response out.  Total: every exception becomes
    a structured response."""
    problem = validate_request(request)
    if problem is not None:
        from .protocol import invalid_response

        return invalid_response(problem)

    # None until a cache lookup actually happens: error paths before (or
    # without) a lookup must not report one.
    cache_info: Optional[dict] = None
    timing = {"compile_seconds": 0.0, "run_seconds": 0.0}
    try:
        flags = request_flags(request)
        overrides = request_runtime_overrides(request)
        backend = request.get("backend", "closure")

        start = time.perf_counter()
        program, cache_info = compile_with_caches(
            request["source"], flags, use_cache=request.get("cache", True)
        )
        timing["compile_seconds"] = round(time.perf_counter() - start, 6)

        report_dict: Optional[dict] = None
        if request.get("verify"):
            from ..analysis import verify_term

            report = verify_term(program.term)
            report_dict = report.to_dict()
            if not report.ok:
                return make_response(
                    "error",
                    error={
                        "type": "VerificationError",
                        "message": report.summary(),
                    },
                    cache=cache_info,
                    timing=timing,
                    verify=report_dict,
                )

        recorder = None
        if request.get("trace"):
            from ..runtime.trace import EventBus, RecordingSink

            recorder = RecordingSink()
            overrides["tracer"] = EventBus(recorder)

        start = time.perf_counter()
        result = program.run(backend=backend, **overrides)
        timing["run_seconds"] = round(time.perf_counter() - start, 6)
        return make_response(
            "ok",
            value=show_value(result.value),
            stdout=result.output,
            stats=result.stats.to_dict(),
            cache=cache_info,
            timing=timing,
            trace=list(recorder.events) if recorder is not None else None,
            verify=report_dict,
        )
    except InterpreterLimit as exc:
        return make_response(
            "limit",
            error={"type": type(exc).__name__, "message": str(exc)},
            stats=exc.stats.to_dict() if getattr(exc, "stats", None) is not None else None,
            cache=cache_info,
            timing=timing,
        )
    except ReproError as exc:
        return make_response(
            "error",
            error={"type": type(exc).__name__, "message": str(exc)},
            cache=cache_info,
            timing=timing,
        )
    except RecursionError as exc:  # pragma: no cover - backstop; the
        # interpreter converts its own recursion overflows to
        # InterpreterLimit, so this only catches pipeline-level blowups.
        return make_response(
            "limit",
            error={"type": "RecursionError", "message": str(exc) or "recursion limit"},
            cache=cache_info,
            timing=timing,
        )
    except Exception as exc:  # noqa: BLE001 - a bug in us, reported as data
        return make_response(
            "error",
            error={"type": type(exc).__name__, "message": str(exc)},
            cache=cache_info,
            timing=timing,
        )

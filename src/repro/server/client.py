"""The Python client + the ``repro-submit`` CLI.

:class:`ServerClient` is a thin stdlib (``urllib``) wrapper over the
wire protocol — it is what the tests, the smoke scripts, the chaos
harness, and ``repro-submit`` all use.  A non-2xx HTTP status is not an
exception when the body is a valid wire response (a 503 rejection is
*data*: ``status="rejected"`` with a ``retry_after``); only transport
failures raise :class:`ServerUnavailable`.

Submissions retry automatically.  A compile-and-run request is
idempotent by construction — the result is a pure function of
``(source, flags, runtime overrides)`` and compilation is
compile-cache-keyed — so the client may safely retransmit on the three
*environmental* failures: transport errors, admission rejections
(capacity / quota / drain), and worker crashes.  Job-level failures
(program errors, resource limits, deadline timeouts) are deterministic
verdicts and are **never** retried.  The backoff is capped exponential
with jitter, honouring the server's ``retry_after`` hint when one is
given; every wait is bounded by ``retry_max_wait`` and the attempt count
by ``retries``, so a retry storm cannot form.  Each attempt carries an
``X-Repro-Attempt`` header so the fleet can count retransmissions.

``repro-submit`` mirrors ``repro-run`` flag-for-flag (same ``--gc-*``
fault-plan family, same limits, same exit codes 0/1/2) so any locally
replayable schedule replays identically against a server; rejections
that survive the retry budget exit 75 (``EX_TEMPFAIL``) so shell retry
loops can tell backpressure from program failure.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Optional

from ..config import CompilerFlags, SpuriousMode, Strategy
from .protocol import make_request

__all__ = ["ServerClient", "ServerUnavailable", "RetryTrace", "main"]

#: Response statuses that are environmental (retryable), not verdicts.
RETRYABLE_STATUSES = frozenset({"rejected", "crashed"})


class ServerUnavailable(Exception):
    """The server could not be reached (or spoke something other than
    the wire protocol)."""


@dataclass
class RetryTrace:
    """How one logical submission went: the number of attempts made, the
    backoff waits slept between them, the reason for each retry
    (a wire status, or ``"unavailable"`` for transport errors), and —
    for gateway-routed submissions — which node answered (the
    ``X-Repro-Node`` header / ``node`` response field; ``None`` when
    talking to a single node directly)."""

    attempts: int = 1
    waits: list = field(default_factory=list)
    reasons: list = field(default_factory=list)
    node: Optional[str] = None

    @property
    def retries(self) -> int:
        return self.attempts - 1

    @property
    def max_wait(self) -> float:
        return max(self.waits, default=0.0)


class ServerClient:
    """Talk to one ``repro-serve`` instance.

    ``retries`` bounds retransmissions per logical submission (0
    disables), ``retry_base_wait``/``retry_max_wait`` shape the capped
    exponential backoff, and ``retry_jitter_seed`` makes the jitter
    deterministic for tests and chaos runs.  The retry counters
    (``retries_attempted``, ``max_retry_wait``) are cumulative across
    the client's lifetime and thread-safe — the chaos harness asserts
    its bounded-retries invariant against them.
    """

    def __init__(self, base_url: str = "http://127.0.0.1:8752",
                 timeout: float = 300.0,
                 retries: int = 3,
                 retry_base_wait: float = 0.1,
                 retry_max_wait: float = 5.0,
                 retry_jitter_seed: Optional[int] = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.retry_base_wait = retry_base_wait
        self.retry_max_wait = retry_max_wait
        self._rng = random.Random(retry_jitter_seed)
        self._retry_lock = threading.Lock()
        self.retries_attempted = 0
        self.max_retry_wait = 0.0

    # -- raw transport -------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[dict] = None,
                 headers: Optional[dict] = None) -> dict:
        return self._request_ex(method, path, body, headers)[0]

    def _request_ex(self, method: str, path: str, body: Optional[dict] = None,
                    headers: Optional[dict] = None) -> tuple[dict, dict]:
        """One HTTP exchange; returns ``(wire response, response headers)``
        with header names lower-cased — the gateway's ``X-Repro-Node``
        routing attribution rides on the headers."""
        url = self.base_url + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        all_headers = {"Content-Type": "application/json"}
        if headers:
            all_headers.update(headers)
        req = urllib.request.Request(url, data=data, method=method,
                                     headers=all_headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
                resp_headers = {k.lower(): v for k, v in resp.headers.items()}
        except urllib.error.HTTPError as exc:
            # 4xx/5xx with a wire-protocol body (rejection, invalid
            # request, draining health) is a *response*, not a transport
            # failure.
            payload = exc.read()
            resp_headers = {k.lower(): v for k, v in (exc.headers or {}).items()}
            try:
                return json.loads(payload), resp_headers
            except ValueError:
                raise ServerUnavailable(
                    f"{method} {url}: HTTP {exc.code} with non-JSON body"
                ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServerUnavailable(f"{method} {url}: {exc}") from exc
        try:
            return json.loads(payload), resp_headers
        except ValueError as exc:
            raise ServerUnavailable(f"{method} {url}: non-JSON response") from exc

    # -- retry machinery -----------------------------------------------------

    def _backoff_wait(self, attempt: int, retry_after) -> float:
        """One bounded backoff interval: the server's ``retry_after``
        hint when usable, else ``base * 2^(attempt-1)``; always capped
        at ``retry_max_wait`` *before* the jitter multiplier (which only
        shrinks), so no wait ever exceeds the cap."""
        target = self.retry_base_wait * (2 ** (attempt - 1))
        if (isinstance(retry_after, (int, float))
                and not isinstance(retry_after, bool) and retry_after > 0):
            target = max(target, float(retry_after))
        wait = min(max(target, 0.0), self.retry_max_wait)
        return wait * (0.5 + 0.5 * self._rng.random())

    def submit_ex(self, request: dict) -> tuple[dict, RetryTrace]:
        """POST one wire request with automatic bounded retries; returns
        the final wire response plus the :class:`RetryTrace` of how it
        was obtained.  Raises :class:`ServerUnavailable` only when the
        transport keeps failing past the retry budget."""
        trace = RetryTrace()
        attempt = 1
        while True:
            headers = {"X-Repro-Attempt": str(attempt)}
            retry_after = None
            try:
                response, resp_headers = self._request_ex(
                    "POST", "/v1/run", request, headers)
            except ServerUnavailable:
                if attempt > self.retries:
                    raise
                reason = "unavailable"
            else:
                status = response.get("status")
                if status not in RETRYABLE_STATUSES or attempt > self.retries:
                    trace.attempts = attempt
                    trace.node = (resp_headers.get("x-repro-node")
                                  or response.get("node"))
                    return response, trace
                reason = status
                retry_after = response.get("retry_after")
            wait = self._backoff_wait(attempt, retry_after)
            trace.waits.append(wait)
            trace.reasons.append(reason)
            with self._retry_lock:
                self.retries_attempted += 1
                if wait > self.max_retry_wait:
                    self.max_retry_wait = wait
            time.sleep(wait)
            attempt += 1

    # -- endpoints -----------------------------------------------------------

    def submit(self, request: dict) -> dict:
        """POST one wire request (with retries); returns the wire
        response (any status, terminal rejections included)."""
        return self.submit_ex(request)[0]

    def run(self, source: str, **kwargs) -> dict:
        """Convenience: build the request with :func:`make_request` and
        submit it."""
        return self.submit(make_request(source, **kwargs))

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        """The readiness/liveness document (``GET /v1/health``).  A
        draining server answers 503 with the same JSON body — that is a
        *response* here, with ``ready: false``."""
        return self._request("GET", "/v1/health")

    def healthz(self) -> dict:
        """Bare liveness (``GET /v1/healthz``)."""
        return self._request("GET", "/v1/healthz")

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.1) -> None:
        """Poll ``/v1/health`` until the server answers *and is ready to
        admit* (startup barrier for scripts that just forked
        ``repro-serve``; also the way to wait out a drain).  Older
        servers without the readiness document are accepted on a bare
        ``ok`` so mixed-version fleets keep working."""
        deadline = time.monotonic() + timeout
        last = "no response yet"
        while True:
            try:
                health = self.health()
                if health.get("ready", health.get("ok")):
                    return
                last = f"not ready: {health}"
            except ServerUnavailable as exc:
                last = str(exc)
            if time.monotonic() >= deadline:
                raise ServerUnavailable(
                    f"server not ready within {timeout}s ({last})")
            time.sleep(interval)


def main(argv: Optional[list] = None) -> int:
    from ..cli import add_gc_arguments, add_limit_arguments, fault_plan_from_args

    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit one MiniML program to a repro-serve instance "
        "and print the result exactly like repro-run would.",
    )
    parser.add_argument("file", help="MiniML source file (or - for stdin)")
    parser.add_argument("--url", default="http://127.0.0.1:8752",
                        help="server base URL (default http://127.0.0.1:8752)")
    parser.add_argument("--gateway", default=None, metavar="URL",
                        help="submit via a repro-gateway fleet front door "
                             "instead of a single node (overrides --url); "
                             "the gateway routes by compile-cache key and "
                             "reports the serving node in X-Repro-Node")
    parser.add_argument("--verbose", action="store_true",
                        help="print routing attribution (which node served "
                             "the request) and retry details to stderr")
    parser.add_argument("--strategy", default="rg",
                        choices=[s.value for s in Strategy])
    parser.add_argument("--spurious-mode", default="secondary",
                        choices=[m.value for m in SpuriousMode])
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--no-prelude", action="store_true")
    parser.add_argument("--no-cache", action="store_true",
                        help="ask the server to bypass its compile caches")
    parser.add_argument("--backend", default="closure",
                        choices=["closure", "bytecode", "tree"])
    parser.add_argument("--tenant", default=None,
                        help="tenant name for servers running per-tenant "
                             "quotas")
    parser.add_argument("--retries", type=int, default=3, metavar="N",
                        help="max automatic retransmissions on transport "
                             "errors, rejections, and worker crashes "
                             "(default 3; 0 disables)")
    parser.add_argument("--retry-max-wait", type=float, default=5.0,
                        metavar="SECONDS",
                        help="cap on any single retry backoff wait "
                             "(default 5.0)")
    parser.add_argument("--stats", action="store_true",
                        help="print the returned RunStats to stderr")
    parser.add_argument("--json", action="store_true",
                        help="print the raw wire response instead of the "
                             "repro-run-style rendering")
    parser.add_argument("--trace", metavar="FILE",
                        help="ask for the event trace and write it as JSONL")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="client-side HTTP timeout (default 300s)")
    add_gc_arguments(parser)
    add_limit_arguments(parser)
    args = parser.parse_args(argv)

    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.file}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 1

    flags = CompilerFlags(
        strategy=Strategy(args.strategy),
        spurious_mode=SpuriousMode(args.spurious_mode),
        verify=not args.no_verify,
        with_prelude=not args.no_prelude,
    )
    request = make_request(
        source,
        flags=flags,
        backend=args.backend,
        cache=not args.no_cache,
        gc_every_alloc=args.gc_every_alloc,
        generational=args.generational,
        gc_policy=args.gc_policy,
        max_heap_words=args.max_heap_words,
        deadline_seconds=args.deadline,
        fault_plan=fault_plan_from_args(args),
        trace=args.trace is not None,
        tenant=args.tenant,
    )

    client = ServerClient(args.gateway or args.url, timeout=args.timeout,
                          retries=args.retries,
                          retry_max_wait=args.retry_max_wait)
    try:
        response, retry_trace = client.submit_ex(request)
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if retry_trace.retries:
        print(f"[retry] {retry_trace.retries} retransmission(s) "
              f"({', '.join(retry_trace.reasons)}), "
              f"max wait {retry_trace.max_wait:.2f}s", file=sys.stderr)
    if args.verbose and retry_trace.node:
        print(f"[route] served by node {retry_trace.node}", file=sys.stderr)

    if args.json:
        print(json.dumps(response, indent=2))
        return int(response.get("exit_status", 1))

    status = response.get("status")
    if status == "ok":
        stdout = response.get("stdout", "")
        if stdout:
            sys.stdout.write(stdout)
            if not stdout.endswith("\n"):
                sys.stdout.write("\n")
        print(f"val it = {response.get('value')}")
    elif status == "rejected":
        err = response.get("error") or {}
        detail = err.get("message") or (
            f"server at capacity; retry after {response.get('retry_after')}s")
        print(f"rejected: {detail}", file=sys.stderr)
    else:
        err = response.get("error") or {}
        label = "limit" if status in ("limit", "timeout") else "error"
        print(f"{label}: {err.get('type')}: {err.get('message')}", file=sys.stderr)
    if args.stats and response.get("stats"):
        from ..runtime.stats import RunStats

        print(f"[stats] {RunStats.from_dict(response['stats']).summary()}",
              file=sys.stderr)
    if args.trace and response.get("trace") is not None:
        with open(args.trace, "w", encoding="utf-8") as handle:
            for event in response["trace"]:
                handle.write(json.dumps(event) + "\n")
    return int(response.get("exit_status", 1))


if __name__ == "__main__":
    raise SystemExit(main())

"""The Python client + the ``repro-submit`` CLI.

:class:`ServerClient` is a thin stdlib (``urllib``) wrapper over the
wire protocol — it is what the tests, the smoke script, and
``repro-submit`` all use.  A non-2xx HTTP status is not an exception
when the body is a valid wire response (a 503 rejection is *data*:
``status="rejected"`` with a ``retry_after``); only transport failures
raise :class:`ServerUnavailable`.

``repro-submit`` mirrors ``repro-run`` flag-for-flag (same ``--gc-*``
fault-plan family, same limits, same exit codes 0/1/2) so any locally
replayable schedule replays identically against a server; rejections
exit 75 (``EX_TEMPFAIL``) so shell retry loops can tell backpressure
from program failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

from ..config import CompilerFlags, SpuriousMode, Strategy
from .protocol import make_request

__all__ = ["ServerClient", "ServerUnavailable", "main"]


class ServerUnavailable(Exception):
    """The server could not be reached (or spoke something other than
    the wire protocol)."""


class ServerClient:
    """Talk to one ``repro-serve`` instance."""

    def __init__(self, base_url: str = "http://127.0.0.1:8752",
                 timeout: float = 300.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- raw transport -------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> dict:
        url = self.base_url + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                payload = resp.read()
        except urllib.error.HTTPError as exc:
            # 4xx/5xx with a wire-protocol body (rejection, invalid
            # request) is a *response*, not a transport failure.
            payload = exc.read()
            try:
                return json.loads(payload)
            except ValueError:
                raise ServerUnavailable(
                    f"{method} {url}: HTTP {exc.code} with non-JSON body"
                ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ServerUnavailable(f"{method} {url}: {exc}") from exc
        try:
            return json.loads(payload)
        except ValueError as exc:
            raise ServerUnavailable(f"{method} {url}: non-JSON response") from exc

    # -- endpoints -----------------------------------------------------------

    def submit(self, request: dict) -> dict:
        """POST one wire request; returns the wire response (any status,
        rejections included)."""
        return self._request("POST", "/v1/run", request)

    def run(self, source: str, **kwargs) -> dict:
        """Convenience: build the request with :func:`make_request` and
        submit it."""
        return self.submit(make_request(source, **kwargs))

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def health(self) -> dict:
        return self._request("GET", "/v1/healthz")

    def wait_ready(self, timeout: float = 30.0, interval: float = 0.1) -> None:
        """Poll ``healthz`` until the server answers (startup barrier for
        scripts that just forked ``repro-serve``)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.health().get("ok"):
                    return
            except ServerUnavailable:
                if time.monotonic() >= deadline:
                    raise
            time.sleep(interval)


def main(argv: Optional[list] = None) -> int:
    from ..cli import add_gc_arguments, add_limit_arguments, fault_plan_from_args

    parser = argparse.ArgumentParser(
        prog="repro-submit",
        description="Submit one MiniML program to a repro-serve instance "
        "and print the result exactly like repro-run would.",
    )
    parser.add_argument("file", help="MiniML source file (or - for stdin)")
    parser.add_argument("--url", default="http://127.0.0.1:8752",
                        help="server base URL (default http://127.0.0.1:8752)")
    parser.add_argument("--strategy", default="rg",
                        choices=[s.value for s in Strategy])
    parser.add_argument("--spurious-mode", default="secondary",
                        choices=[m.value for m in SpuriousMode])
    parser.add_argument("--no-verify", action="store_true")
    parser.add_argument("--no-prelude", action="store_true")
    parser.add_argument("--no-cache", action="store_true",
                        help="ask the server to bypass its compile caches")
    parser.add_argument("--backend", default="closure",
                        choices=["closure", "tree"])
    parser.add_argument("--stats", action="store_true",
                        help="print the returned RunStats to stderr")
    parser.add_argument("--json", action="store_true",
                        help="print the raw wire response instead of the "
                             "repro-run-style rendering")
    parser.add_argument("--trace", metavar="FILE",
                        help="ask for the event trace and write it as JSONL")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="client-side HTTP timeout (default 300s)")
    add_gc_arguments(parser)
    add_limit_arguments(parser)
    args = parser.parse_args(argv)

    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.file}: {exc.strerror or exc}",
                  file=sys.stderr)
            return 1

    flags = CompilerFlags(
        strategy=Strategy(args.strategy),
        spurious_mode=SpuriousMode(args.spurious_mode),
        verify=not args.no_verify,
        with_prelude=not args.no_prelude,
    )
    request = make_request(
        source,
        flags=flags,
        backend=args.backend,
        cache=not args.no_cache,
        gc_every_alloc=args.gc_every_alloc,
        generational=args.generational,
        max_heap_words=args.max_heap_words,
        deadline_seconds=args.deadline,
        fault_plan=fault_plan_from_args(args),
        trace=args.trace is not None,
    )

    client = ServerClient(args.url, timeout=args.timeout)
    try:
        response = client.submit(request)
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(response, indent=2))
        return int(response.get("exit_status", 1))

    status = response.get("status")
    if status == "ok":
        stdout = response.get("stdout", "")
        if stdout:
            sys.stdout.write(stdout)
            if not stdout.endswith("\n"):
                sys.stdout.write("\n")
        print(f"val it = {response.get('value')}")
    elif status == "rejected":
        print(f"rejected: server at capacity, retry after "
              f"{response.get('retry_after')}s", file=sys.stderr)
    else:
        err = response.get("error") or {}
        label = "limit" if status in ("limit", "timeout") else "error"
        print(f"{label}: {err.get('type')}: {err.get('message')}", file=sys.stderr)
    if args.stats and response.get("stats"):
        from ..runtime.stats import RunStats

        print(f"[stats] {RunStats.from_dict(response['stats']).summary()}",
              file=sys.stderr)
    if args.trace and response.get("trace") is not None:
        with open(args.trace, "w", encoding="utf-8") as handle:
            for event in response["trace"]:
                handle.write(json.dumps(event) + "\n")
    return int(response.get("exit_status", 1))


if __name__ == "__main__":
    raise SystemExit(main())

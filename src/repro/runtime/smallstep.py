"""The paper's small-step contextual dynamic semantics (Figures 5-6),
executable.

``step(e, phi)`` performs one reduction of a closed region-annotated term
given the set ``phi`` of currently allocated regions; evaluation contexts
are realized by recursive descent (the [Ctx] rule), with ``letregion``
extending ``phi`` for its body exactly as the ``E_phi`` grammar
prescribes.  Unlike Helsen and Thiemann's semantics, values in
deallocated regions are not "nulled out": access is ruled out by the
allocated-region set, and violations raise loudly.

This machine exists to *test the metatheory*:

* type preservation (Proposition 18) — every step preserves ``pi``;
* progress (Proposition 19) — a well-typed non-value always steps;
* containment (Theorem 2) — ``phi |=c e`` is preserved, which is the
  property that makes interleaving a tracing collector with evaluation
  safe.

It covers the paper's core calculus plus the value-like extensions needed
by the examples (booleans, strings, conditionals, non-allocating and
allocating primitives, lists).  References and exceptions are exercised
by the big-step machine only, as in the paper's formalism.

It is deliberately *slow* (term rewriting with substitution); use
:mod:`repro.runtime.interp` for anything measured.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core import terms as T
from ..core.effects import RegionVar, RHO_TOP
from ..core.errors import RuntimeFault, UseAfterFreeError
from ..core.substitution import Subst

__all__ = ["step", "evaluate", "trace", "StuckError"]


class StuckError(RuntimeFault):
    """No rule applies: the progress property failed (a bug somewhere)."""


def _alloc_guard(rho: RegionVar, phi: frozenset, what: str) -> None:
    if rho != RHO_TOP and rho not in phi:
        raise UseAfterFreeError(
            f"{what} at {rho.display()} outside the allocated set — the "
            "region is deallocated or was never allocated"
        )


def step(e: T.Term, phi: frozenset) -> Optional[T.Term]:
    """One reduction step; ``None`` when ``e`` is a value."""
    if T.is_value(e):
        return None

    # -- allocation rules ------------------------------------------------------
    if isinstance(e, T.Lam):
        _alloc_guard(e.rho, phi, "closure allocation")
        return T.VClos(e.param, e.body, e.rho, e.mu)
    if isinstance(e, T.FunDef):
        _alloc_guard(e.rho, phi, "fun-closure allocation")
        return T.VFunClos(e.fname, e.rparams, e.param, e.body, e.rho, e.pi)
    if isinstance(e, T.IntLit):
        return T.VInt(e.value)
    if isinstance(e, T.BoolLit):
        return T.VBool(e.value)
    if isinstance(e, T.UnitLit):
        return T.VUnit()
    if isinstance(e, T.NilLit):
        return T.VNil(e.mu)
    if isinstance(e, T.StringLit):
        _alloc_guard(e.rho, phi, "string allocation")
        return T.VStr(e.value, e.rho)
    if isinstance(e, T.RealLit):
        _alloc_guard(e.rho, phi, "real allocation")
        return T.VReal(e.value, e.rho)
    if isinstance(e, T.Pair):
        if not T.is_value(e.fst):
            inner = step(e.fst, phi)
            return T.Pair(inner, e.snd, e.rho)
        if not T.is_value(e.snd):
            inner = step(e.snd, phi)
            return T.Pair(e.fst, inner, e.rho)
        _alloc_guard(e.rho, phi, "pair allocation")
        return T.VPair(e.fst, e.snd, e.rho)
    if isinstance(e, T.Cons):
        if not T.is_value(e.head):
            return T.Cons(step(e.head, phi), e.tail, e.rho)
        if not T.is_value(e.tail):
            return T.Cons(e.head, step(e.tail, phi), e.rho)
        _alloc_guard(e.rho, phi, "cons allocation")
        return T.VCons(e.head, e.tail, e.rho)

    # -- letregion: [Reg] plus context descent with phi extended ------------------
    if isinstance(e, T.Letregion):
        if T.is_value(e.body):
            return e.body  # [Reg]: deallocate and return the value
        inner_phi = phi | set(e.rhos)
        return T.Letregion(e.rhos, step(e.body, inner_phi))

    # -- reductions -----------------------------------------------------------------
    if isinstance(e, T.App):
        if not T.is_value(e.fn):
            return T.App(step(e.fn, phi), e.arg)
        if not T.is_value(e.arg):
            return T.App(e.fn, step(e.arg, phi))
        fn = e.fn
        if isinstance(fn, T.VClos):
            _alloc_guard(fn.rho, phi, "closure access")
            return T.subst_value(fn.body, fn.param, e.arg)
        if isinstance(fn, T.VFunClos) and not fn.rparams:
            # A degenerate region application was elided: unroll in place.
            _alloc_guard(fn.rho, phi, "fun access")
            unrolled = T.subst_value(fn.body, fn.fname, fn)
            return T.App(T.VClos(fn.param, unrolled, fn.rho, _arrow_mu_of(fn)), e.arg)
        raise StuckError(f"application of a non-closure {type(fn).__name__}")
    if isinstance(e, T.RApp):
        if not T.is_value(e.fn):
            return T.RApp(step(e.fn, phi), e.rargs, e.rho, e.inst)
        fn = e.fn
        if not isinstance(fn, T.VFunClos):
            raise StuckError("region application of a non-fun value")
        _alloc_guard(fn.rho, phi, "fun access")
        _alloc_guard(e.rho, phi, "specialized-closure allocation")
        # [Rapp]: lambda x . e[rvec'/rvec][<fun ...>/f] at rho — we apply
        # the full recorded instantiation so annotations stay well-typed
        # (Propositions 11-12 in the preservation proof).
        body = T.apply_subst_term(e.inst, fn.body)
        body = T.subst_value(body, fn.fname, fn)
        inst_pi = e.inst.tau(fn.pi.scheme.body)
        from ..core.rtypes import MuBoxed

        mu = MuBoxed(inst_pi, e.rho)
        return T.Lam(fn.param, body, e.rho, mu)
    if isinstance(e, T.Let):
        if not T.is_value(e.rhs):
            return T.Let(e.name, step(e.rhs, phi), e.body)
        return T.subst_value(e.body, e.name, e.rhs)
    if isinstance(e, T.Select):
        if not T.is_value(e.pair):
            return T.Select(e.index, step(e.pair, phi))
        pair = e.pair
        if not isinstance(pair, T.VPair):
            raise StuckError("projection from a non-pair")
        _alloc_guard(pair.rho, phi, "pair access")
        return pair.fst if e.index == 1 else pair.snd
    if isinstance(e, T.If):
        if not T.is_value(e.cond):
            return T.If(step(e.cond, phi), e.then, e.els)
        if not isinstance(e.cond, T.VBool):
            raise StuckError("if on a non-boolean")
        return e.then if e.cond.value else e.els
    if isinstance(e, T.Prim):
        new_args = []
        stepped = False
        for a in e.args:
            if not stepped and not T.is_value(a):
                new_args.append(step(a, phi))
                stepped = True
            else:
                new_args.append(a)
        if stepped:
            return T.Prim(e.op, tuple(new_args), e.rho)
        return _prim_reduce(e, phi)

    raise StuckError(f"no rule for {type(e).__name__}")


def _arrow_mu_of(fn: T.VFunClos):
    from ..core.rtypes import MuBoxed

    return MuBoxed(fn.pi.scheme.body, fn.rho)


def _structural_eq_value(a: T.Term, b: T.Term, phi: frozenset) -> bool:
    """SML structural equality over small-step value forms, mirroring
    :func:`repro.runtime.values.structural_eq` on the big-step side (the
    differential oracle compares the two).  Every boxed node traversed is
    an access, so the ``phi`` guard fires on dangling spines exactly as a
    ``hd``/``#1`` walk would."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        cx = type(x)
        if cx is not type(y):
            if {cx, type(y)} <= {T.VNil, T.VCons}:
                return False
            raise StuckError(
                f"= on incompatible value forms {cx.__name__}/{type(y).__name__}"
            )
        if cx is T.VCons:
            _alloc_guard(x.rho, phi, "cons access")
            _alloc_guard(y.rho, phi, "cons access")
            stack.append((x.head, y.head))
            stack.append((x.tail, y.tail))
        elif cx is T.VPair:
            _alloc_guard(x.rho, phi, "pair access")
            _alloc_guard(y.rho, phi, "pair access")
            stack.append((x.fst, y.fst))
            stack.append((x.snd, y.snd))
        elif cx is T.VStr:
            _alloc_guard(x.rho, phi, "string access")
            _alloc_guard(y.rho, phi, "string access")
            if x.value != y.value:
                return False
        elif cx in (T.VInt, T.VBool):
            if x.value != y.value:
                return False
        elif cx in (T.VUnit, T.VNil):
            pass
        elif cx is T.VReal:
            raise RuntimeFault("= applied to real: real is not an equality type")
        elif cx in (T.VClos, T.VFunClos):
            raise RuntimeFault("= applied to a function value")
        else:
            raise StuckError(f"= on non-value {cx.__name__}")
    return True


def _prim_reduce(e: T.Prim, phi: frozenset) -> T.Term:
    op = e.op
    args = e.args

    def ival(v: T.Term) -> int:
        assert isinstance(v, T.VInt), f"expected int, got {v!r}"
        return v.value

    if op in ("add", "sub", "mul", "div", "mod", "neg"):
        if op == "neg":
            return T.VInt(-ival(args[0]))
        a, b = ival(args[0]), ival(args[1])
        if op == "add":
            return T.VInt(a + b)
        if op == "sub":
            return T.VInt(a - b)
        if op == "mul":
            return T.VInt(a * b)
        if b == 0:
            raise RuntimeFault("division by zero")
        return T.VInt(a // b if op == "div" else a - (a // b) * b)
    if op in ("eq", "ne"):
        out = _structural_eq_value(args[0], args[1], phi)
        return T.VBool(out if op == "eq" else not out)
    if op in ("lt", "le", "gt", "ge"):
        a, b = args

        def key(v):
            if isinstance(v, (T.VStr, T.VReal)):
                _alloc_guard(v.rho, phi, "boxed access")
                return v.value
            if isinstance(v, (T.VInt, T.VBool)):
                return v.value
            if isinstance(v, T.VUnit):
                return 0
            raise StuckError(f"comparison of {type(v).__name__}")

        ka, kb = key(a), key(b)
        out = {
            "lt": ka < kb, "le": ka <= kb, "gt": ka > kb, "ge": ka >= kb,
        }[op]
        return T.VBool(out)
    if op == "concat":
        a, b = args
        assert isinstance(a, T.VStr) and isinstance(b, T.VStr)
        _alloc_guard(a.rho, phi, "string access")
        _alloc_guard(b.rho, phi, "string access")
        _alloc_guard(e.rho, phi, "string allocation")
        return T.VStr(a.value + b.value, e.rho)
    if op == "size":
        (a,) = args
        assert isinstance(a, T.VStr)
        _alloc_guard(a.rho, phi, "string access")
        return T.VInt(len(a.value))
    if op == "not":
        (a,) = args
        assert isinstance(a, T.VBool)
        return T.VBool(not a.value)
    if op == "null":
        (a,) = args
        return T.VBool(isinstance(a, T.VNil))
    if op == "hd":
        (a,) = args
        if not isinstance(a, T.VCons):
            raise RuntimeFault("hd of nil")
        _alloc_guard(a.rho, phi, "cons access")
        return a.head
    if op == "tl":
        (a,) = args
        if not isinstance(a, T.VCons):
            raise RuntimeFault("tl of nil")
        _alloc_guard(a.rho, phi, "cons access")
        return a.tail
    raise StuckError(f"small-step machine does not implement primitive {op}")


def trace(term: T.Term, max_steps: int = 100_000) -> Iterator[T.Term]:
    """Yield the reduction sequence starting from ``term`` (inclusive)."""
    phi: frozenset = frozenset({RHO_TOP})
    current = term
    yield current
    for _ in range(max_steps):
        nxt = step(current, phi)
        if nxt is None:
            return
        current = nxt
        yield current
    raise RuntimeFault(f"small-step budget exceeded ({max_steps})")


def evaluate(term: T.Term, max_steps: int = 100_000) -> T.Term:
    """Run to a value (or raise)."""
    last = term
    for t in trace(term, max_steps):
        last = t
    return last

"""The region profiler: per-``letregion``-site statistics, in the
spirit of the MLKit's region profiler (`mlkit -prof`), built as a sink
on the :mod:`repro.runtime.trace` event bus.

Region names are the pretty-printed region variables of the annotated
program (``r42``), so one *site* — one ``letregion``-bound region
variable — may be instantiated many times dynamically (once per loop
iteration, say).  The profiler aggregates per site:

* **instances** — how many regions the site pushed;
* **high-water words** — the maximum footprint any instance reached
  (allocation events carry the region's running footprint, and a
  collection only ever shrinks it, so the per-instance high-water is the
  max over its ``alloc`` events);
* **lifetime** — interpreter steps between push and pop (the dynamic
  extent of the ``letregion``);
* **classification** — ``finite`` (stack-allocated, the multiplicity
  analysis proved a single put; ``capacity`` is the statically inferred
  size) vs ``infinite`` (heap pages, collected); a finite region whose
  static size estimate overflowed at runtime is reported as
  ``finite->inf`` — exactly the sites where the multiplicity analysis
  was too optimistic;
* **dangles** — collector probes that found the site's region already
  deallocated (the paper's Figure 1 fault, attributed to its site).

:meth:`RegionProfiler.report` renders the classic text profile: one row
per site, sorted by high-water words, with a bar chart — the analogue of
an MLKit region profile, over our abstract word-exact heap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RegionProfiler", "SiteProfile"]


@dataclass
class _LiveRegion:
    """One pushed, not-yet-popped region instance."""

    name: str
    kind: str
    capacity: Optional[int]
    push_step: int
    high_water: int = 0
    high_pages: int = 0
    waste: int = 0
    allocs: int = 0
    alloc_words: int = 0
    morphed: bool = False


@dataclass
class SiteProfile:
    """Aggregated statistics for one ``letregion`` site (region name)."""

    name: str
    kind: str = "infinite"
    capacity: Optional[int] = None
    instances: int = 0
    live_instances: int = 0
    allocs: int = 0
    alloc_words: int = 0
    high_water: int = 0          # max over instances
    high_pages: int = 0          # max page residency of any instance
    waste_words: int = 0         # internal fragmentation, summed over pops
    total_lifetime: int = 0      # steps, summed over popped instances
    max_lifetime: int = 0
    popped: int = 0
    morphed: int = 0             # finite instances that overflowed
    dangles: int = 0

    @property
    def classification(self) -> str:
        if self.kind == "finite":
            return "finite->inf" if self.morphed else "finite"
        return self.kind

    @property
    def avg_lifetime(self) -> float:
        return self.total_lifetime / self.popped if self.popped else 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "classification": self.classification,
            "capacity": self.capacity,
            "instances": self.instances,
            "live_instances": self.live_instances,
            "allocs": self.allocs,
            "alloc_words": self.alloc_words,
            "high_water": self.high_water,
            "high_pages": self.high_pages,
            "waste_words": self.waste_words,
            "avg_lifetime": self.avg_lifetime,
            "max_lifetime": self.max_lifetime,
            "dangles": self.dangles,
        }


class RegionProfiler:
    """An event-bus sink that aggregates a region profile.

    Attach to an :class:`~repro.runtime.trace.EventBus` (or pass to
    ``repro-run --profile``); after the run, :meth:`report` renders the
    per-site table and :meth:`sites` returns the raw aggregates.
    """

    def __init__(self) -> None:
        self._live: dict[int, _LiveRegion] = {
            # The global region rtop exists before any event.
            0: _LiveRegion(name="rtop", kind="infinite", capacity=None, push_step=0)
        }
        self._sites: dict[str, SiteProfile] = {}
        self._last_step = 0
        self.gc_majors = 0
        self.gc_minors = 0
        self.gc_copied = 0
        self.gc_promoted = 0
        self.reclaimed_by_gc = 0
        self.dangles: list[dict] = []
        self.strategy: Optional[str] = None
        self.completed = False

    # -- event consumption -------------------------------------------------------

    def on_event(self, event: dict) -> None:
        step = event.get("step", 0)
        if step > self._last_step:
            self._last_step = step
        ev = event["ev"]
        if ev == "alloc":
            rec = self._live.get(event["region"])
            if rec is None:  # pragma: no cover - push always precedes alloc
                return
            rec.allocs += 1
            rec.alloc_words += event["words"]
            if event["region_words"] > rec.high_water:
                rec.high_water = event["region_words"]
            if event["region_pages"] > rec.high_pages:
                rec.high_pages = event["region_pages"]
        elif ev == "region_push":
            self._live[event["region"]] = _LiveRegion(
                name=event["name"],
                kind=event["kind"],
                capacity=event.get("capacity"),
                push_step=step,
            )
        elif ev == "region_pop":
            rec = self._live.pop(event["region"], None)
            if rec is None:  # pragma: no cover - pops are always paired
                return
            site = self._site(rec)
            site.popped += 1
            rec.waste = event["waste"]
            if event["pages"] > rec.high_pages:
                rec.high_pages = event["pages"]
            lifetime = step - rec.push_step
            site.total_lifetime += lifetime
            if lifetime > site.max_lifetime:
                site.max_lifetime = lifetime
            self._merge_instance(site, rec)
        elif ev == "region_morph":
            rec = self._live.get(event["region"])
            if rec is not None:
                rec.morphed = True
        elif ev == "gc_end":
            if event["kind"] == "major":
                self.gc_majors += 1
            else:
                self.gc_minors += 1
            self.gc_copied += event["copied"]
            self.gc_promoted += event["promoted"]
            self.reclaimed_by_gc += event["from_words"] - event["to_words"]
        elif ev == "dangle":
            self.dangles.append(event)
            site = self._sites.get(event["name"])
            if site is not None:
                site.dangles += 1
        elif ev == "run_begin":
            self.strategy = event["strategy"]
        elif ev == "run_end":
            self.completed = True

    def close(self) -> None:
        """Fold still-live regions (the global region, and anything the
        run left unpopped after a fault) into the site table."""
        for rec in self._live.values():
            site = self._site(rec)
            site.live_instances += 1
            self._merge_instance(site, rec)
        self._live.clear()

    # -- aggregation -------------------------------------------------------------

    def _site(self, rec: _LiveRegion) -> SiteProfile:
        site = self._sites.get(rec.name)
        if site is None:
            site = SiteProfile(name=rec.name, kind=rec.kind, capacity=rec.capacity)
            self._sites[rec.name] = site
        return site

    def _merge_instance(self, site: SiteProfile, rec: _LiveRegion) -> None:
        site.instances += 1
        site.allocs += rec.allocs
        site.alloc_words += rec.alloc_words
        if rec.high_water > site.high_water:
            site.high_water = rec.high_water
        if rec.high_pages > site.high_pages:
            site.high_pages = rec.high_pages
        site.waste_words += rec.waste
        if rec.morphed:
            site.morphed += 1
        # The multiplicity analysis classifies the *site*; instances agree
        # by construction, but keep the finite classification sticky so a
        # morph doesn't erase it.
        if rec.kind == "finite":
            site.kind = "finite"
            if site.capacity is None:
                site.capacity = rec.capacity

    def sites(self) -> list[SiteProfile]:
        """Site profiles, largest high-water first (ties: most allocated
        words, then name — deterministic)."""
        if self._live:
            self.close()
        return sorted(
            self._sites.values(),
            key=lambda s: (-s.high_water, -s.alloc_words, s.name),
        )

    # -- rendering ---------------------------------------------------------------

    def report(self, top: int = 25, width: int = 24) -> str:
        """The text region profile (MLKit-profiler style)."""
        sites = self.sites()
        lines = []
        header = "region profile"
        if self.strategy:
            header += f" (strategy {self.strategy})"
        lines.append(header)
        lines.append(
            f"  {len(sites)} sites, {sum(s.instances for s in sites)} regions, "
            f"{self.gc_majors} major + {self.gc_minors} minor collections "
            f"({self.gc_copied} objects copied, {self.gc_promoted} promoted, "
            f"{self.reclaimed_by_gc} words reclaimed)"
        )
        if self.dangles:
            d = self.dangles[0]
            lines.append(
                f"  !! {len(self.dangles)} dangling-pointer probe(s): first at "
                f"step {d['step']} into region {d['name']} ({d['obj']}) — "
                f"the Figure 1 fault"
            )
        lines.append("")
        lines.append(
            f"  {'site':10s} {'class':>11s} {'cap':>5s} {'insts':>6s} "
            f"{'allocs':>7s} {'words':>8s} {'hiwater':>8s} {'pages':>6s} "
            f"{'waste':>7s} {'life(avg/max)':>15s}  "
            f"{'':{width}s}"
        )
        shown = sites[:top]
        scale = max((s.high_water for s in shown), default=0)
        for s in shown:
            bar = ""
            if scale:
                bar = "#" * max(1 if s.high_water else 0,
                                round(s.high_water * width / scale))
            cap = str(s.capacity) if s.capacity is not None else "-"
            life = f"{s.avg_lifetime:.0f}/{s.max_lifetime}"
            dangle = f"  DANGLED x{s.dangles}" if s.dangles else ""
            lines.append(
                f"  {s.name:10s} {s.classification:>11s} {cap:>5s} "
                f"{s.instances:>6d} {s.allocs:>7d} {s.alloc_words:>8d} "
                f"{s.high_water:>8d} {s.high_pages:>6d} {s.waste_words:>7d} "
                f"{life:>15s}  {bar}{dangle}"
            )
        if len(sites) > top:
            rest = sites[top:]
            lines.append(
                f"  ... {len(rest)} more sites "
                f"({sum(s.alloc_words for s in rest)} words allocated)"
            )
        return "\n".join(lines)

"""The observability event bus: a structured trace of what the region
heap and the collector do, emitted as JSONL (one JSON object per line).

The MLKit ships a *region profiler* precisely because the evaluation of
a region/GC system (the paper's Section 6, Figure 9) rests on being able
to see live words, collection counts, and which regions a fix keeps
alive.  This module is the repro's equivalent substrate: every
observable heap/GC transition is an *event* published on an
:class:`EventBus`, and sinks (a JSONL writer, the in-memory recorder,
the :class:`~repro.runtime.profiler.RegionProfiler`) consume them.

Design constraints:

* **Near-zero overhead when disabled.**  The hot paths (every
  allocation!) guard each emission with a single attribute check::

      tr = self.trace
      if tr.enabled:
          tr.emit("alloc", step=..., region=..., ...)

  With no tracer installed, ``self.trace`` is the shared
  :data:`NULL_TRACER` whose ``enabled`` is a plain class attribute
  ``False`` — no event dict is ever built, no call is made.  An
  :class:`EventBus` with no sinks attached reports ``enabled = False``
  too, so even an installed-but-unconsumed bus allocates nothing per
  event (``tests/runtime/test_trace.py`` pins both properties).
* **Deterministic.**  Events carry the interpreter step counter and a
  per-run sequence number, never wall-clock time, so a trace of a
  deterministic run is byte-identical across machines (the golden-file
  test relies on this).

Event schema (version :data:`SCHEMA_VERSION`): every event is a flat
JSON object with ``i`` (sequence number), ``ev`` (kind), ``step``
(interpreter steps so far), plus per-kind fields — see
:data:`EVENT_SCHEMA` and ``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import IO, Optional

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_SCHEMA",
    "Tracer",
    "NULL_TRACER",
    "EventBus",
    "JsonlSink",
    "RecordingSink",
    "open_jsonl",
    "validate_event",
]

#: Bump when the event vocabulary or a field meaning changes.
#: Version 2 added the page dimension (``region_pages``, ``pages``,
#: ``waste``, ``to_pages``, ``peak_pages``) and the collection-policy
#: fields (``policy``, ``minors_until_major``).
SCHEMA_VERSION = 2

#: kind -> (required fields, optional fields).  ``i``/``ev``/``step`` are
#: implicit on every event.
EVENT_SCHEMA: dict[str, tuple[frozenset, frozenset]] = {
    # Run lifecycle.  ``policy`` is the resolved collection policy name
    # (:data:`repro.runtime.gc.POLICIES`).
    "run_begin": (
        frozenset({"strategy", "generational", "policy", "schema"}),
        frozenset(),
    ),
    "run_end": (
        frozenset({"steps", "allocations", "peak_words", "peak_pages",
                   "gc_count", "gc_minor_count"}),
        frozenset(),
    ),
    # Region lifecycle (letregion push/pop).  ``pages`` is the page count
    # returned to the free list by the pop; ``waste`` the words the
    # region lost to internal fragmentation (closed partial pages plus
    # the unused tail of its last page).
    "region_push": (frozenset({"region", "name", "kind"}), frozenset({"capacity"})),
    "region_pop": (frozenset({"region", "name", "words", "pages", "waste"}), frozenset()),
    # A finite (stack) region whose static size estimate overflowed and
    # fell back to the infinite representation.
    "region_morph": (frozenset({"region", "name"}), frozenset()),
    # Allocation of ``words`` into ``region``; ``region_words`` /
    # ``region_pages`` are the region's footprint *after* the allocation
    # (its running high-water).
    "alloc": (
        frozenset({"region", "words", "region_words", "region_pages", "kind"}),
        frozenset(),
    ),
    # Collection begin/end.  ``gc`` is the 1-based collection ordinal
    # (majors + minors); ``from_words``/``to_words`` bracket the heap
    # footprint and ``to_pages`` the page residency after re-packing;
    # ``copied`` counts evacuated (live, traced) objects; ``promoted``
    # counts minor-collection survivors promoted to the old generation.
    # ``policy`` names the installed collection policy;
    # ``minors_until_major`` (generational policy only) is the
    # MINORS_PER_MAJOR countdown at this collection.
    "gc_begin": (
        frozenset({"kind", "gc", "from_words", "policy"}),
        frozenset({"minors_until_major"}),
    ),
    "gc_end": (
        frozenset({"kind", "gc", "from_words", "to_words", "to_pages",
                   "copied", "promoted"}),
        frozenset(),
    ),
    # The collector traced a pointer into a deallocated region — the
    # paper's Figure 1 fault, observed.  Emitted immediately before
    # DanglingPointerError is raised.
    "dangle": (frozenset({"region", "name", "obj"}), frozenset()),
    # Generational write barrier: an old object now points into the
    # young generation (remembered-set entry).
    "remember": (frozenset({"region"}), frozenset()),
}


def validate_event(event: dict) -> Optional[str]:
    """Check one decoded event against :data:`EVENT_SCHEMA`.

    Returns ``None`` when valid, else a human-readable error string.
    """
    for key in ("i", "ev", "step"):
        if key not in event:
            return f"event missing required field {key!r}: {event!r}"
    kind = event["ev"]
    if kind not in EVENT_SCHEMA:
        return f"unknown event kind {kind!r}: {event!r}"
    required, optional = EVENT_SCHEMA[kind]
    fields = set(event) - {"i", "ev", "step"}
    missing = required - fields
    if missing:
        return f"{kind} event missing {sorted(missing)}: {event!r}"
    extra = fields - required - optional
    if extra:
        return f"{kind} event has unknown fields {sorted(extra)}: {event!r}"
    return None


class Tracer:
    """The no-op tracer.  ``enabled`` is a plain class attribute so the
    hot-path guard costs one attribute load; :meth:`emit` exists only so
    mis-guarded call sites stay harmless."""

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, /, **fields) -> None:  # pragma: no cover - guarded out
        pass

    def close(self) -> None:
        pass


#: The shared disabled tracer installed when no tracing is requested.
NULL_TRACER = Tracer()


class EventBus(Tracer):
    """Publishes events to the attached sinks.

    A bus with no sinks is disabled: the producers' ``if tr.enabled``
    guard sees ``False`` and skips event construction entirely.
    """

    __slots__ = ("sinks", "seq", "enabled")

    def __init__(self, *sinks) -> None:
        self.sinks: list = list(sinks)
        self.seq = 0
        self.enabled = bool(self.sinks)

    def attach(self, sink) -> None:
        self.sinks.append(sink)
        self.enabled = True

    def emit(self, kind: str, /, **fields) -> None:
        event = {"i": self.seq, "ev": kind}
        event.update(fields)
        self.seq += 1
        for sink in self.sinks:
            sink.on_event(event)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class JsonlSink:
    """Writes each event as one JSON line to a file object."""

    def __init__(self, stream: IO[str], owns_stream: bool = False) -> None:
        self.stream = stream
        self.owns_stream = owns_stream
        self.events_written = 0

    def on_event(self, event: dict) -> None:
        self.stream.write(json.dumps(event, separators=(",", ":")))
        self.stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        self.stream.flush()
        if self.owns_stream:
            self.stream.close()


class RecordingSink:
    """Accumulates events in memory (tests, the profiler example)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def on_event(self, event: dict) -> None:
        self.events.append(event)

    def kinds(self) -> list[str]:
        return [e["ev"] for e in self.events]


def open_jsonl(path: str) -> JsonlSink:
    """A :class:`JsonlSink` writing to ``path`` (owned: closed with the
    bus)."""
    return JsonlSink(open(path, "w", encoding="utf-8"), owns_stream=True)

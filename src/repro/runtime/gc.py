"""The reference-tracing collector (papers [24], [16], and this paper's
Sections 1 and 5), simulated word-exactly over the paged region heap,
factored into pluggable *collection policies*.

A collection traces the root set (the interpreter's shadow stack — the
single root source for every policy and every backend), visits every
reachable boxed value, and *evacuates* the live data of each infinite
region: the region's word count is reset to its live words and its page
list re-packed.  Finite (stack) regions are scanned but never compacted
— exactly the MLKit's split.

The property this module exists to test: tracing a pointer into a
**deallocated** region raises :class:`DanglingPointerError`.  Under the
paper's sound ``rg`` strategy this can never happen (Theorem 2 —
containment); under ``rg-`` the programs of Figures 1 and 8 make it
happen.

Three policies are registered (:data:`POLICIES`), selectable via
``RuntimeFlags.gc_policy`` / ``--gc-policy``:

* ``copying`` — per-region Cheney copying, majors only.  To-space pages
  are reserved *before* from-space is released, so ``peak_pages``
  records the classic 2x copy-reserve spike.
* ``generational`` — two generations after Elsman-Hallenberg [16, 17]:
  minor collections trace only objects allocated since the last
  collection, using a remembered set fed by the write barrier on ``:=``,
  on the :data:`MINORS_PER_MAJOR` schedule.
* ``mark-compact`` — majors only, but live data slides *in place*: no
  to-space reserve, so large/infinite regions never spike their page
  residency mid-GC.  Word accounting is identical to ``copying``.

All three are bit-identical on values, stdout, and every
mutator-observable stat (steps, allocations, allocated words); the
majors-only pair shares the exact schedule and so matches on the full
word-level stats and (but for the ``policy`` fields) trace events,
while ``generational``'s minors legitimately move the GC-derived
quantities — the policy split is a page-residency and schedule knob,
never a semantics knob.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.errors import DanglingPointerError, StalePointerError
from .heap import FINITE, Heap, INFINITE, NO_PAGE, Region
from .values import (
    RArray,
    RBox,
    RClos,
    RCons,
    RData,
    RExn,
    RFunClos,
    RPair,
    RRef,
    RStr,
    is_boxed,
)

__all__ = [
    "Collector",
    "CollectionPolicy",
    "CopyingPolicy",
    "GenerationalPolicy",
    "MarkCompactPolicy",
    "POLICIES",
    "MINORS_PER_MAJOR",
    "resolve_policy",
    "policy_table",
]

#: The generational schedule: every :data:`MINORS_PER_MAJOR`-th *auto*
#: collection is a major; the ``MINORS_PER_MAJOR - 1`` between are
#: minors.  (Plan-pinned ``"minor"``/``"major"`` collections bypass the
#: schedule and leave the countdown untouched.)  Surfaced on every
#: generational ``gc_begin`` trace event as ``minors_until_major`` and
#: pinned by the golden trace test.
MINORS_PER_MAJOR = 4


class CollectionPolicy:
    """One pluggable collection policy: the auto minor/major schedule
    plus the page mechanics of evacuation.  Stateless except for the
    generational countdown; everything word-level lives in the
    :class:`Collector` so policies cannot drift on accounting."""

    #: Registry name (the ``--gc-policy`` value).
    name = "abstract"
    #: Minor collections + write barrier active.
    generational = False
    #: Cheney to-space: reserve pages for evacuated data before
    #: releasing from-space (the transient ``peak_pages`` spike).
    #: ``False`` models sliding mark-compact.
    reserves_to_space = True
    #: One-line schedule description for the embedded policy table.
    schedule = "major on every trigger"

    def auto_kind(self) -> str:
        """Which collection an ``"auto"`` trigger runs now."""
        return "major"


class CopyingPolicy(CollectionPolicy):
    name = "copying"
    schedule = "major on every trigger"


class GenerationalPolicy(CollectionPolicy):
    name = "generational"
    generational = True
    schedule = f"{MINORS_PER_MAJOR - 1} minors, then a major"

    def __init__(self) -> None:
        self.until_major = MINORS_PER_MAJOR

    def auto_kind(self) -> str:
        self.until_major -= 1
        if self.until_major <= 0:
            self.until_major = MINORS_PER_MAJOR
            return "major"
        return "minor"


class MarkCompactPolicy(CollectionPolicy):
    name = "mark-compact"
    reserves_to_space = False
    schedule = "major on every trigger"


POLICIES: dict[str, type] = {
    CopyingPolicy.name: CopyingPolicy,
    GenerationalPolicy.name: GenerationalPolicy,
    MarkCompactPolicy.name: MarkCompactPolicy,
}


def resolve_policy(gc_policy: Optional[str], generational: bool) -> str:
    """Map the two runtime knobs onto a registry name: an explicit
    ``gc_policy`` wins; otherwise the legacy ``generational`` boolean
    picks between ``generational`` and ``copying``."""
    if gc_policy is not None:
        if gc_policy not in POLICIES:
            raise ValueError(
                f"unknown gc policy {gc_policy!r} "
                f"(expected one of {', '.join(sorted(POLICIES))})"
            )
        return gc_policy
    return GenerationalPolicy.name if generational else CopyingPolicy.name


def policy_table() -> str:
    """The policy matrix as a Markdown table — embedded verbatim in
    ``docs/performance.md`` and kept in sync by
    ``scripts/docs_consistency.py``."""
    lines = [
        "| policy | auto schedule | write barrier | to-space reserve |",
        "|---|---|---|---|",
    ]
    for name in sorted(POLICIES):
        cls = POLICIES[name]
        lines.append(
            f"| `{name}` | {cls.schedule} "
            f"| {'on' if cls.generational else 'off'} "
            f"| {'yes (page spike mid-GC)' if cls.reserves_to_space else 'no (slides in place)'} |"
        )
    return "\n".join(lines)


class Collector:
    """The policy-independent collection machinery: root tracing, the
    dangle/sanitizer checks, word accounting, and the trace events.  The
    installed :class:`CollectionPolicy` only decides the auto schedule
    and the page mechanics of :meth:`_sweep`."""

    def __init__(self, heap: Heap, generational: bool = False) -> None:
        self.heap = heap
        policy_name = resolve_policy(
            heap.flags.gc_policy, generational or heap.flags.generational
        )
        self.policy: CollectionPolicy = POLICIES[policy_name]()
        self.generational = self.policy.generational
        self.sanitize = heap.flags.sanitize
        #: Write barrier log: old objects that may point to young ones.
        self.remembered: list = []

    # -- write barrier ---------------------------------------------------------

    def note_write(self, ref: RBox) -> None:
        """Write barrier: records an old-generation mutable cell (a ``ref``
        or an array) that may now point at young data."""
        if self.generational and ref.gen > 0:
            self.remembered.append(ref)
            self.heap.stats.remembered_writes += 1
            tr = self.heap.trace
            if tr.enabled:
                tr.emit(
                    "remember",
                    step=self.heap.stats.steps,
                    region=ref.region.ident,
                )

    # -- fault-injection dispatch ----------------------------------------------

    def collect_kind(self, kind: str, roots: Iterable) -> int:
        """Run a collection of the given kind: ``"major"``, ``"minor"``, or
        ``"auto"`` (the policy's schedule — for ``generational`` the
        :data:`MINORS_PER_MAJOR` countdown, a major for everything else).
        Fault plans use this to pin the minor/major choice at an injected
        point and so stress the write barrier deterministically."""
        if kind == "minor":
            return self.collect_minor(roots)
        if kind == "major":
            return self.collect(roots)
        return self.collect_auto(roots)

    # -- collection entry points --------------------------------------------------

    def _emit_gc_begin(self, kind: str, ordinal: int, from_words: int) -> None:
        tr = self.heap.trace
        fields = dict(
            step=self.heap.stats.steps,
            kind=kind,
            gc=ordinal,
            from_words=from_words,
            policy=self.policy.name,
        )
        if self.generational:
            fields["minors_until_major"] = self.policy.until_major
        tr.emit("gc_begin", **fields)

    def collect(self, roots: Iterable) -> int:
        """A full (major) collection.  Returns the live words retained."""
        stats = self.heap.stats
        stats.gc_count += 1
        tr = self.heap.trace
        ordinal = stats.gc_count + stats.gc_minor_count
        from_words = stats.current_words
        if tr.enabled:
            self._emit_gc_begin("major", ordinal, from_words)
        live_words: dict[Region, int] = {}
        seen: set = set()
        copied, _promoted = self._trace(roots, seen, live_words, minor=False)
        retained = self._sweep(live_words, seen, minor=False)
        self.heap.note_collection(retained)
        self.remembered.clear()
        if tr.enabled:
            tr.emit(
                "gc_end",
                step=stats.steps,
                kind="major",
                gc=ordinal,
                from_words=from_words,
                to_words=stats.current_words,
                to_pages=stats.current_pages,
                copied=copied,
                promoted=0,
            )
        return retained

    def collect_minor(self, roots: Iterable) -> int:
        """A minor collection: traces only the young generation, with the
        remembered set as extra roots.  Survivors are promoted."""
        stats = self.heap.stats
        stats.gc_minor_count += 1
        tr = self.heap.trace
        ordinal = stats.gc_count + stats.gc_minor_count
        from_words = stats.current_words
        if tr.enabled:
            self._emit_gc_begin("minor", ordinal, from_words)
        live_words: dict[Region, int] = {}
        seen: set = set()
        # A remembered ref whose region has since been deallocated is dead
        # (letregion popped it after the write): tracing it would step into
        # the dead region and report a spurious dangle.
        all_roots = list(roots) + [r for r in self.remembered if r.region.alive]
        copied, promoted = self._trace(all_roots, seen, live_words, minor=True)
        retained = self._sweep(live_words, seen, minor=True)
        self.remembered.clear()
        if tr.enabled:
            tr.emit(
                "gc_end",
                step=stats.steps,
                kind="minor",
                gc=ordinal,
                from_words=from_words,
                to_words=stats.current_words,
                to_pages=stats.current_pages,
                copied=copied,
                promoted=promoted,
            )
        return retained

    def collect_auto(self, roots: Iterable) -> int:
        """An auto-triggered collection: the policy picks the kind."""
        if self.policy.auto_kind() == "minor":
            return self.collect_minor(roots)
        return self.collect(roots)

    # -- tracing ---------------------------------------------------------------------

    def _trace(
        self, roots: Iterable, seen: set, live_words: dict, minor: bool
    ) -> tuple[int, int]:
        """Trace from ``roots``; returns (objects evacuated, objects
        promoted to the old generation)."""
        stats = self.heap.stats
        copied = 0
        promoted = 0
        sanitize = self.sanitize
        stack: list = [v for v in roots if is_boxed(v)]
        while stack:
            obj: RBox = stack.pop()
            key = id(obj)
            if key in seen:
                continue
            seen.add(key)
            region = obj.region
            if not region.alive:
                tr = self.heap.trace
                if tr.enabled:
                    tr.emit(
                        "dangle",
                        step=stats.steps,
                        region=region.ident,
                        name=region.name,
                        obj=type(obj).__name__,
                    )
                raise DanglingPointerError(
                    f"the collector traced a pointer into deallocated region "
                    f"{region.name} (object {type(obj).__name__}) — the "
                    "dangling-pointer fault of Figure 1",
                    region_id=region.ident,
                )
            if sanitize:
                if obj.san != region.stamp:
                    self._san_fault(obj, region, stats)
                if obj.page_san != obj.page.stamp:
                    self._san_fault(obj, region, stats, page=True)
                # Evacuation retires the birth-page witness: the value now
                # (notionally) lives on a to-space page, so its old page
                # can recycle without indicting it.
                obj.page = NO_PAGE
                obj.page_san = 0
            if not (minor and obj.gen > 0):
                live_words[region] = live_words.get(region, 0) + obj.words()
                stats.gc_traced_words += obj.words()
                copied += 1
                if minor:
                    obj.gen = 1  # promote survivors
                    promoted += 1
            # Children
            if isinstance(obj, RPair):
                if is_boxed(obj.fst):
                    stack.append(obj.fst)
                if is_boxed(obj.snd):
                    stack.append(obj.snd)
            elif isinstance(obj, RCons):
                if is_boxed(obj.head):
                    stack.append(obj.head)
                if is_boxed(obj.tail):
                    stack.append(obj.tail)
            elif isinstance(obj, (RClos, RFunClos)):
                for v in obj.venv.values():
                    if is_boxed(v):
                        stack.append(v)
            elif isinstance(obj, RRef):
                if is_boxed(obj.contents):
                    stack.append(obj.contents)
            elif isinstance(obj, RArray):
                for v in obj.slots:
                    if is_boxed(v):
                        stack.append(v)
            elif isinstance(obj, (RExn, RData)):
                if is_boxed(obj.payload):
                    stack.append(obj.payload)
            # RStr / RReal have no children.
        return copied, promoted

    def _san_fault(self, obj: RBox, region: Region, stats, page: bool = False):
        tr = self.heap.trace
        if tr.enabled:
            tr.emit(
                "dangle",
                step=stats.steps,
                region=region.ident,
                name=region.name,
                obj=type(obj).__name__,
                sanitizer=True,
            )
        if page:
            raise StalePointerError(
                f"sanitizer: scavenge met a value whose birth page was "
                f"recycled (region {region.name}, object "
                f"{type(obj).__name__}, page stamp {obj.page_san} != "
                f"{obj.page.stamp})",
                region_id=region.ident,
            )
        raise StalePointerError(
            f"sanitizer: scavenge met a stale pointer into region "
            f"{region.name} (object {type(obj).__name__}, stamp "
            f"{obj.san} != {region.stamp})",
            region_id=region.ident,
        )

    def _sweep(self, live_words: dict, seen: set, minor: bool) -> int:
        """Evacuate infinite regions: reset each live region's word count
        to its live data (minor collections only shrink the young part)
        and re-pack its pages per the installed policy."""
        stats = self.heap.stats
        heap = self.heap
        reserve = self.policy.reserves_to_space
        retained = 0
        for region in heap.region_stack:
            if not region.alive:  # pragma: no cover - defensive
                continue
            if region.kind == FINITE:
                retained += region.words
                continue
            live = live_words.get(region, 0)
            if minor:
                # Only the young suffix is collected: old words persist.
                old = region.words - region.young_words
                new_words = old + live
            else:
                new_words = live
            reclaimed = region.words - new_words
            if reclaimed > 0:
                stats.gc_reclaimed_words += reclaimed
                stats.current_words -= reclaimed
            region.words = new_words
            region.young_words = 0
            heap.repack_region(region, new_words, live, reserve)
            retained += region.words
        return retained

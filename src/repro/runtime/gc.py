"""The reference-tracing copying collector (papers [24], [16], and this
paper's Sections 1 and 5), simulated word-exactly over the region heap.

A collection traces the root set (the interpreter's shadow stack), visits
every reachable boxed value, and *evacuates* the live data of each
infinite region: the region's word count is reset to its live words,
modelling per-region Cheney copying.  Finite (stack) regions are scanned
but never compacted — exactly the MLKit's split.

The property this module exists to test: tracing a pointer into a
**deallocated** region raises :class:`DanglingPointerError`.  Under the
paper's sound ``rg`` strategy this can never happen (Theorem 2 —
containment); under ``rg-`` the programs of Figures 1 and 8 make it
happen.

A simple two-generation mode (after Elsman-Hallenberg [16, 17]) is
included: minor collections trace only objects allocated since the last
collection, using a remembered set fed by the write barrier on ``:=``.
"""

from __future__ import annotations

from typing import Iterable

from ..core.errors import DanglingPointerError, StalePointerError
from .heap import FINITE, Heap, INFINITE, Region
from .values import RBox, RClos, RCons, RData, RExn, RFunClos, RPair, RRef, RStr, is_boxed

__all__ = ["Collector"]


class Collector:
    def __init__(self, heap: Heap, generational: bool = False) -> None:
        self.heap = heap
        self.generational = generational
        self.sanitize = heap.flags.sanitize
        #: Write barrier log: old objects that may point to young ones.
        self.remembered: list = []
        self._collections_until_major = 4

    # -- write barrier ---------------------------------------------------------

    def note_write(self, ref: RRef) -> None:
        if self.generational and ref.gen > 0:
            self.remembered.append(ref)
            self.heap.stats.remembered_writes += 1
            tr = self.heap.trace
            if tr.enabled:
                tr.emit(
                    "remember",
                    step=self.heap.stats.steps,
                    region=ref.region.ident,
                )

    # -- fault-injection dispatch ----------------------------------------------

    def collect_kind(self, kind: str, roots: Iterable) -> int:
        """Run a collection of the given kind: ``"major"``, ``"minor"``, or
        ``"auto"`` (the generational several-minors-per-major policy).
        Fault plans use this to pin the minor/major choice at an injected
        point and so stress the write barrier deterministically."""
        if kind == "minor":
            return self.collect_minor(roots)
        if kind == "major":
            return self.collect(roots)
        return self.collect_auto(roots)

    # -- collection entry points --------------------------------------------------

    def collect(self, roots: Iterable) -> int:
        """A full (major) collection.  Returns the live words retained."""
        stats = self.heap.stats
        stats.gc_count += 1
        tr = self.heap.trace
        ordinal = stats.gc_count + stats.gc_minor_count
        from_words = stats.current_words
        if tr.enabled:
            tr.emit(
                "gc_begin",
                step=stats.steps,
                kind="major",
                gc=ordinal,
                from_words=from_words,
            )
        live_words: dict[Region, int] = {}
        seen: set = set()
        copied, _promoted = self._trace(roots, seen, live_words, minor=False)
        retained = self._sweep(live_words, seen, minor=False)
        self.heap.note_collection(retained)
        self.remembered.clear()
        if tr.enabled:
            tr.emit(
                "gc_end",
                step=stats.steps,
                kind="major",
                gc=ordinal,
                from_words=from_words,
                to_words=stats.current_words,
                copied=copied,
                promoted=0,
            )
        return retained

    def collect_minor(self, roots: Iterable) -> int:
        """A minor collection: traces only the young generation, with the
        remembered set as extra roots.  Survivors are promoted."""
        stats = self.heap.stats
        stats.gc_minor_count += 1
        tr = self.heap.trace
        ordinal = stats.gc_count + stats.gc_minor_count
        from_words = stats.current_words
        if tr.enabled:
            tr.emit(
                "gc_begin",
                step=stats.steps,
                kind="minor",
                gc=ordinal,
                from_words=from_words,
            )
        live_words: dict[Region, int] = {}
        seen: set = set()
        # A remembered ref whose region has since been deallocated is dead
        # (letregion popped it after the write): tracing it would step into
        # the dead region and report a spurious dangle.
        all_roots = list(roots) + [r for r in self.remembered if r.region.alive]
        copied, promoted = self._trace(all_roots, seen, live_words, minor=True)
        retained = self._sweep(live_words, seen, minor=True)
        self.remembered.clear()
        if tr.enabled:
            tr.emit(
                "gc_end",
                step=stats.steps,
                kind="minor",
                gc=ordinal,
                from_words=from_words,
                to_words=stats.current_words,
                copied=copied,
                promoted=promoted,
            )
        return retained

    def collect_auto(self, roots: Iterable) -> int:
        """Generational policy: several minors per major."""
        if not self.generational:
            return self.collect(roots)
        self._collections_until_major -= 1
        if self._collections_until_major <= 0:
            self._collections_until_major = 4
            return self.collect(roots)
        return self.collect_minor(roots)

    # -- tracing ---------------------------------------------------------------------

    def _trace(
        self, roots: Iterable, seen: set, live_words: dict, minor: bool
    ) -> tuple[int, int]:
        """Trace from ``roots``; returns (objects evacuated, objects
        promoted to the old generation)."""
        stats = self.heap.stats
        copied = 0
        promoted = 0
        stack: list = [v for v in roots if is_boxed(v)]
        while stack:
            obj: RBox = stack.pop()
            key = id(obj)
            if key in seen:
                continue
            seen.add(key)
            region = obj.region
            if not region.alive:
                tr = self.heap.trace
                if tr.enabled:
                    tr.emit(
                        "dangle",
                        step=stats.steps,
                        region=region.ident,
                        name=region.name,
                        obj=type(obj).__name__,
                    )
                raise DanglingPointerError(
                    f"the collector traced a pointer into deallocated region "
                    f"{region.name} (object {type(obj).__name__}) — the "
                    "dangling-pointer fault of Figure 1",
                    region_id=region.ident,
                )
            if self.sanitize and obj.san != region.stamp:
                tr = self.heap.trace
                if tr.enabled:
                    tr.emit(
                        "dangle",
                        step=stats.steps,
                        region=region.ident,
                        name=region.name,
                        obj=type(obj).__name__,
                        sanitizer=True,
                    )
                raise StalePointerError(
                    f"sanitizer: scavenge met a stale pointer into region "
                    f"{region.name} (object {type(obj).__name__}, stamp "
                    f"{obj.san} != {region.stamp})",
                    region_id=region.ident,
                )
            if not (minor and obj.gen > 0):
                live_words[region] = live_words.get(region, 0) + obj.words()
                stats.gc_traced_words += obj.words()
                copied += 1
                if minor:
                    obj.gen = 1  # promote survivors
                    promoted += 1
            # Children
            if isinstance(obj, RPair):
                if is_boxed(obj.fst):
                    stack.append(obj.fst)
                if is_boxed(obj.snd):
                    stack.append(obj.snd)
            elif isinstance(obj, RCons):
                if is_boxed(obj.head):
                    stack.append(obj.head)
                if is_boxed(obj.tail):
                    stack.append(obj.tail)
            elif isinstance(obj, (RClos, RFunClos)):
                for v in obj.venv.values():
                    if is_boxed(v):
                        stack.append(v)
            elif isinstance(obj, RRef):
                if is_boxed(obj.contents):
                    stack.append(obj.contents)
            elif isinstance(obj, (RExn, RData)):
                if is_boxed(obj.payload):
                    stack.append(obj.payload)
            # RStr / RReal have no children.
        return copied, promoted

    def _sweep(self, live_words: dict, seen: set, minor: bool) -> int:
        """Evacuate infinite regions: reset each live region's word count
        to its live data (minor collections only shrink the young part)."""
        stats = self.heap.stats
        retained = 0
        for region in self.heap.region_stack:
            if not region.alive:  # pragma: no cover - defensive
                continue
            if region.kind == FINITE:
                retained += region.words
                continue
            live = live_words.get(region, 0)
            if minor:
                # Only the young suffix is collected: old words persist.
                old = region.words - region.young_words
                new_words = old + live
            else:
                new_words = live
            reclaimed = region.words - new_words
            if reclaimed > 0:
                stats.gc_reclaimed_words += reclaimed
                stats.current_words -= reclaimed
            region.words = new_words
            region.young_words = 0
            retained += region.words
        return retained

"""Closure compilation: lower a region-annotated term to Python closures.

:func:`compile_term` walks the term **once** and returns a closure
``code(rt, env, renv) -> value`` for every node, eliminating the
per-step ``isinstance`` dispatch chain of :meth:`Interp.ev
<repro.runtime.interp.Interp.ev>`:

* node constants (literal values, region variables, capture lists,
  multiplicity decisions, drop-region sets, allocation sizes) are read
  from the term once, at compile time;
* primitive operations go through a *kernel table*
  (:func:`_prim_kernel`) instead of the ``_apply_prim`` if-chain;
* direct calls ``(f [rhos] at r) arg`` jump straight to the callee's
  compiled body via the ``code`` slot on
  :class:`~repro.runtime.values.RClos`/:class:`~repro.runtime.values.RFunClos`;
* *immediate* subterms (variables and unboxed literals) are fused into
  their parent node — one Python call instead of three for ``n - 1``.

The compiled program is **semantics-identical to the tree walker, bit
for bit**: it calls the same :class:`~repro.runtime.interp.Interp`
methods for allocation, region resolution, GC decisions, and region
binding, and replicates ``ev``'s shadow-stack discipline exactly, so
``RunStats``, stdout, JSONL traces, and fault-plan GC schedules match
the seed interpreter under every strategy (asserted over the whole
Figure 9 suite by ``tests/runtime/test_closure_backend.py``).  Two
classes of elision are proven unobservable rather than replicated:

* **step-count fusion** — a fused node bumps ``stats.steps`` by its
  node count in one increment.  Intermediate counts are only observable
  through trace events and limit checks; no trace event can fire inside
  a fused window (immediates cannot allocate), and when a step budget
  or deadline is configured (``rt.checking``) every fused fast path
  falls back to the exact per-node closure chain;
* **shadow-stack elision** — a ``temps`` push whose extent provably
  contains no allocation (immediate argument evaluation, region binding
  in a direct call) is dropped: the collector can only observe ``temps``
  during a collection, and collections only happen at allocation and
  region-deallocation points.

The per-node prologue is::

    st = rt.stats; st.steps += 1
    if rt.checking:
        rt.check_limits()

``rt.checking`` is true only when a step budget or deadline is
configured; when false neither check can fire in ``ev`` either, so
guarding them removes pure overhead without changing behaviour.

Compiled code is per-*program*, not per-run: the same ``code`` value can
be executed by many ``Interp`` instances (the run state ``rt`` is an
argument, not a capture), which is what makes the pipeline compile
cache (:mod:`repro.cache`) effective.
"""

from __future__ import annotations

import math
import operator

from ..core import terms as T
from ..core.errors import InterpreterLimit, RuntimeFault
from .heap import FINITE, INFINITE, Region
from .interp import MLRaise, Prepared, _MISSING, _exn_key
from .values import (
    NIL,
    Nil,
    RClos,
    RCons,
    RData,
    RExn,
    RFunClos,
    RPair,
    RReal,
    RRef,
    RStr,
    UNIT,
    real_to_sml_string,
    structural_eq,
)

__all__ = ["compile_term"]


def _immediate(t: T.Term):
    """An evaluator ``env -> value`` for nodes that cannot allocate,
    fault, or recurse — or ``None``.  Fused into parent nodes."""
    cls = type(t)
    if cls is T.Var:
        name = t.name
        return lambda env: env[name]
    if cls is T.IntLit or cls is T.BoolLit:
        value = t.value
        return lambda env: value
    if cls is T.UnitLit:
        return lambda env: UNIT
    if cls is T.NilLit:
        return lambda env: NIL
    return None


def _invoke(rt, fn, arg):
    """Compiled-mode application: ``Interp._invoke`` + ``_enter`` in one
    frame.  A closure without a ``code`` slot (created outside the
    compiled program — cannot happen in a pure compiled run, but kept as
    a safety valve) falls back to the tree walker for its body."""
    if type(fn) is RClos:
        call_env = dict(fn.venv)
        call_env[fn.param] = arg
        call_renv = dict(fn.renv)
    elif type(fn) is RFunClos:
        # A fun used monomorphically (no region parameters).
        call_env = dict(fn.venv)
        call_env[fn.fname] = fn
        call_env[fn.param] = arg
        call_renv = dict(fn.renv)
    else:
        raise RuntimeFault("application of a non-function value")
    rt.depth += 1
    if rt.depth > rt.flags.max_depth:
        rt.depth -= 1
        raise InterpreterLimit(
            f"call depth exceeded ({rt.flags.max_depth})", stats=rt.stats
        )
    rt.env_stack.append(call_env)
    try:
        code = fn.code
        if code is None:
            return rt.ev(fn.body, call_env, dict(call_renv))
        return code(rt, call_env, call_renv)
    finally:
        rt.env_stack.pop()
        rt.depth -= 1


def _dealloc_fast(heap, st, region):
    """``Heap.dealloc_region`` minus the (disabled) trace emit: the
    compiled letregion's untraced pop path, shared with the generated
    bytecode kernels.  Must mirror the heap method exactly — including
    the young-word reset and the O(pages) return of the region's pages
    to the free list — so backends cannot drift on dealloc accounting."""
    assert region.alive, "double deallocation of a region"
    region.alive = False
    region.stamp += 1
    st.current_words -= region.words
    st.region_deallocs += 1
    region.words = 0
    region.young_words = 0
    region.waste_words = 0
    heap._release(region, len(region.page_list))
    region.cur_free = 0
    stack = heap.region_stack
    if stack and stack[-1] is region:
        stack.pop()
    else:  # pragma: no cover - LIFO by construction
        stack.remove(region)


def _alloc(rt, rho, renv, words):
    """``Interp.alloc`` (resolve + account + GC decision) in a single
    Python frame.

    Every branch with observable structure — a finite region (extra
    stats + possible morph event), tracing enabled, a heap cap (exact
    ``HeapLimitError``), a dead region (``UseAfterFreeError`` before any
    accounting) — delegates to :meth:`Heap.alloc` verbatim; only the
    branch-free accounting of the common case is inlined.  The GC
    decision is :meth:`Heap.gc_decision` inlined: fault plan first
    (authoritative), then ``gc_every_alloc``, then the heap-to-live
    growth policy.
    """
    heap = rt.heap
    if rt.ml_mode or rho.top:
        region = heap.global_region
    else:
        region = renv.get(rho)
        if region is None:
            raise RuntimeFault(f"unbound region variable {rho.display()}")
    flags = heap.flags
    if (
        not region.alive
        or region.kind == FINITE
        or heap.trace.enabled
        or flags.max_heap_words is not None
    ):
        heap.alloc(region, words)
    else:
        region.words += words
        region.young_words += words
        free = region.cur_free
        if words <= free:
            region.cur_free = free - words
        else:
            heap._grow(region, words)
        stats = heap.stats
        stats.allocations += 1
        stats.allocated_words += words
        stats.current_words += words
        stats.note_current()
        heap.words_since_gc += words
    if rt.use_gc:
        stats = heap.stats
        plan = flags.fault_plan
        if plan is not None:
            kind = plan.decide_alloc(stats.allocations - 1)
            if kind is not None:
                stats.gc_injected += 1
                rt.collector.collect_kind(kind, rt.roots())
        elif flags.gc_every_alloc:
            rt.collector.collect_kind("auto", rt.roots())
        elif heap.words_since_gc >= heap.gc_threshold:
            rt.collector.collect_kind("auto", rt.roots())
    return region


# ---------------------------------------------------------------------------
# Primitive kernels
# ---------------------------------------------------------------------------


def _prim_kernel(op: str, rho):
    """Return ``(arity, kernel, allocates)`` for ``op``, or
    ``(None, None, True)`` for an op without a specialized kernel (the
    compiled node then falls back to ``rt._apply_prim``).  Binary
    kernels are ``k(rt, a, b, renv)``, unary ``k(rt, a, renv)``;
    allocation destinations close over ``rho``.  Each kernel body is
    the corresponding ``_apply_prim`` branch, verbatim.  ``allocates``
    gates the shadow-stack elision for fused immediate arguments: a
    non-allocating kernel can never trigger a collection, so its
    argument roots are unobservable."""
    if op == "add":
        return 2, (lambda rt, a, b, renv: a + b), False
    if op == "sub":
        return 2, (lambda rt, a, b, renv: a - b), False
    if op == "mul":
        return 2, (lambda rt, a, b, renv: a * b), False
    if op == "div":

        def k_div(rt, a, b, renv):
            if b == 0:
                raise RuntimeFault("Div: division by zero")
            return a // b

        return 2, k_div, False
    if op == "mod":

        def k_mod(rt, a, b, renv):
            if b == 0:
                raise RuntimeFault("Mod: modulo by zero")
            return a - (a // b) * b

        return 2, k_mod, False
    if op == "neg":
        return 1, (lambda rt, a, renv: -a), False
    if op in ("lt", "le", "gt", "ge"):
        cmp = {
            "lt": lambda x, y: x < y,
            "le": lambda x, y: x <= y,
            "gt": lambda x, y: x > y,
            "ge": lambda x, y: x >= y,
        }[op]

        def k_cmp(rt, a, b, renv):
            ka = a.value if isinstance(a, (RStr, RReal)) else a
            kb = b.value if isinstance(b, (RStr, RReal)) else b
            return cmp(ka, kb)

        return 2, k_cmp, False
    if op == "eq":
        return 2, (lambda rt, a, b, renv: structural_eq(a, b)), False
    if op == "ne":
        return 2, (lambda rt, a, b, renv: not structural_eq(a, b)), False
    if op in ("radd", "rsub", "rmul", "rdiv"):
        if op == "rdiv":

            def k_rdiv(rt, a, b, renv):
                y = b.value
                if y == 0.0:
                    raise RuntimeFault("Div: real division by zero")
                out = a.value / y
                region = _alloc(rt, rho, renv, 1)
                return RReal(out, region)

            return 2, k_rdiv, True

        rop = {
            "radd": operator.add,
            "rsub": operator.sub,
            "rmul": operator.mul,
        }[op]

        def k_rbin(rt, a, b, renv):
            out = rop(a.value, b.value)
            region = _alloc(rt, rho, renv, 1)
            return RReal(out, region)

        return 2, k_rbin, True
    if op in ("rneg", "sqrt", "rsin", "rcos", "ratan", "rexp", "rln", "rabs"):
        fn = {
            "rneg": lambda x: -x,
            "sqrt": math.sqrt,
            "rsin": math.sin,
            "rcos": math.cos,
            "ratan": math.atan,
            "rexp": math.exp,
            "rln": math.log,
            "rabs": abs,
        }[op]

        def k_runary(rt, a, renv):
            out = fn(a.value)
            region = _alloc(rt, rho, renv, 1)
            return RReal(out, region)

        return 1, k_runary, True
    if op == "real":

        def k_real(rt, a, renv):
            region = _alloc(rt, rho, renv, 1)
            return RReal(float(a), region)

        return 1, k_real, True
    if op == "floor":
        return 1, (lambda rt, a, renv: math.floor(a.value)), False
    if op == "round":
        return 1, (lambda rt, a, renv: round(a.value)), False
    if op == "trunc":
        return 1, (lambda rt, a, renv: int(a.value)), False
    if op == "concat":

        def k_concat(rt, a, b, renv):
            s = a.value + b.value
            region = _alloc(rt, rho, renv, 1 + (len(s) + 7) // 8)
            return RStr(s, region)

        return 2, k_concat, True
    if op == "size":
        return 1, (lambda rt, a, renv: len(a.value)), False
    if op == "int_to_string":

        def k_its(rt, a, renv):
            s = str(a) if a >= 0 else f"~{-a}"
            region = _alloc(rt, rho, renv, 1 + (len(s) + 7) // 8)
            return RStr(s, region)

        return 1, k_its, True
    if op == "real_to_string":

        def k_rts(rt, a, renv):
            s = real_to_sml_string(a.value)
            region = _alloc(rt, rho, renv, 1 + (len(s) + 7) // 8)
            return RStr(s, region)

        return 1, k_rts, True
    if op == "print":

        def k_print(rt, a, renv):
            rt.output.append(a.value)
            return UNIT

        return 1, k_print, False
    if op == "not":
        return 1, (lambda rt, a, renv: not a), False
    if op == "null":
        return 1, (lambda rt, a, renv: isinstance(a, Nil)), False
    if op == "hd":

        def k_hd(rt, a, renv):
            if isinstance(a, Nil):
                raise RuntimeFault("Empty: hd of nil")
            if rt.sanitize:
                rt.san_check(a)
            return a.head

        return 1, k_hd, False
    if op == "tl":

        def k_tl(rt, a, renv):
            if isinstance(a, Nil):
                raise RuntimeFault("Empty: tl of nil")
            if rt.sanitize:
                rt.san_check(a)
            return a.tail

        return 1, k_tl, False
    return None, None, True


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


def compile_term(term: T.Term, prep: Prepared, multiplicity=None,
                 drop_regions=None):
    """Compile ``term`` to a closure ``code(rt, env, renv) -> value``.

    ``prep`` must be the :func:`~repro.runtime.interp.prepare` tables
    for this exact term (capture sets and direct-call sites are keyed by
    node identity).  ``multiplicity``/``drop_regions`` are the same
    per-program analyses ``Interp`` consumes; they are burned in at
    compile time, so the returned code must be run under matching
    analyses (the pipeline guarantees this — both live on the same
    :class:`~repro.pipeline.CompiledProgram`).
    """

    def go(t: T.Term):
        cls = type(t)

        if cls is T.Var:
            name = t.name

            def c_var(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                return env[name]

            return c_var

        if cls is T.IntLit or cls is T.BoolLit:
            value = t.value

            def c_const(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                return value

            return c_const

        if cls is T.UnitLit:

            def c_unit(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                return UNIT

            return c_unit

        if cls is T.NilLit:

            def c_nil(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                return NIL

            return c_nil

        if cls is T.StringLit:
            value = t.value
            rho = t.rho
            words = 1 + (len(value) + 7) // 8

            def c_str(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                region = _alloc(rt, rho, renv, words)
                return RStr(value, region)

            return c_str

        if cls is T.RealLit:
            value = t.value
            rho = t.rho

            def c_real(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                region = _alloc(rt, rho, renv, 1)
                return RReal(value, region)

            return c_real

        if cls is T.App:
            if id(t) in prep.direct_calls:
                return _compile_direct_call(t)
            return _compile_app(t)

        if cls is T.Let:
            rhs_code = go(t.rhs)
            body_code = go(t.body)
            name = t.name

            def c_let(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                value = rhs_code(rt, env, renv)
                saved = env.get(name, _MISSING)
                env[name] = value
                try:
                    return body_code(rt, env, renv)
                finally:
                    if saved is _MISSING:
                        del env[name]
                    else:
                        env[name] = saved

            rhs_imm = _immediate(t.rhs)
            if rhs_imm is None:
                # ``let x = #i t in ...`` — tuple destructuring — fuses
                # the select into the binding (nothing in the rhs can
                # allocate or fault except the non-pair check, kept).
                if type(t.rhs) is T.Select:
                    sel_imm = _immediate(t.rhs.pair)
                    if sel_imm is not None:
                        sel_fst = t.rhs.index == 1

                        def c_let_sel(rt, env, renv):
                            if rt.checking:
                                return c_let(rt, env, renv)
                            rt.stats.steps += 3
                            pair = sel_imm(env)
                            if type(pair) is not RPair:
                                raise RuntimeFault("#i of a non-pair value")
                            if rt.sanitize:
                                rt.san_check(pair)
                            value = pair.fst if sel_fst else pair.snd
                            saved = env.get(name, _MISSING)
                            env[name] = value
                            try:
                                return body_code(rt, env, renv)
                            finally:
                                if saved is _MISSING:
                                    del env[name]
                                else:
                                    env[name] = saved

                        return c_let_sel
                return c_let

            def c_let_imm(rt, env, renv):
                if rt.checking:
                    return c_let(rt, env, renv)
                rt.stats.steps += 2
                value = rhs_imm(env)
                saved = env.get(name, _MISSING)
                env[name] = value
                try:
                    return body_code(rt, env, renv)
                finally:
                    if saved is _MISSING:
                        del env[name]
                    else:
                        env[name] = saved

            return c_let_imm

        if cls is T.If:
            cond_code = go(t.cond)
            then_code = go(t.then)
            els_code = go(t.els)
            cond_imm = _immediate(t.cond)
            if cond_imm is None:

                def c_if(rt, env, renv):
                    st = rt.stats
                    st.steps += 1
                    if rt.checking:
                        rt.check_limits()
                    if cond_code(rt, env, renv):
                        return then_code(rt, env, renv)
                    return els_code(rt, env, renv)

                # A comparison on immediates (``if x < n then ...``) can be
                # fused straight into the branch: 4 nodes, no allocation
                # anywhere in the condition, one Python frame.
                if type(t.cond) is T.Prim and len(t.cond.args) == 2:
                    arity, kernel, allocates = _prim_kernel(
                        t.cond.op, t.cond.rho
                    )
                    if arity == 2 and not allocates:
                        ca = _immediate(t.cond.args[0])
                        cb = _immediate(t.cond.args[1])
                        if ca is not None and cb is not None:

                            def c_if_cmp(rt, env, renv):
                                if rt.checking:
                                    rt.stats.steps += 1
                                    rt.check_limits()
                                    if cond_code(rt, env, renv):
                                        return then_code(rt, env, renv)
                                    return els_code(rt, env, renv)
                                rt.stats.steps += 4
                                if kernel(rt, ca(env), cb(env), renv):
                                    return then_code(rt, env, renv)
                                return els_code(rt, env, renv)

                            return c_if_cmp
                return c_if

            def c_if_imm(rt, env, renv):
                if rt.checking:
                    rt.stats.steps += 1
                    rt.check_limits()
                    if cond_code(rt, env, renv):
                        return then_code(rt, env, renv)
                    return els_code(rt, env, renv)
                rt.stats.steps += 2
                if cond_imm(env):
                    return then_code(rt, env, renv)
                return els_code(rt, env, renv)

            return c_if_imm

        if cls is T.Prim:
            return _compile_prim(t)

        if cls is T.Letregion:
            return _compile_letregion(t)

        if cls is T.RApp:
            fn_code = go(t.fn)
            rargs = t.rargs
            rho = t.rho

            def c_rapp(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                fn = fn_code(rt, env, renv)
                if type(fn) is not RFunClos:
                    raise RuntimeFault("region application of a non-fun value")
                if rt.sanitize:
                    rt.san_check(fn)
                st.region_apps += 1
                rt.temps.append(fn)
                try:
                    call_renv = rt._bind_regions(fn, rargs, renv)
                    venv = dict(fn.venv)
                    venv[fn.fname] = fn
                    region = _alloc(rt, rho, renv, 1 + len(venv) + len(call_renv))
                finally:
                    rt.temps.pop()
                return RClos(fn.param, fn.body, venv, call_renv, region,
                             code=fn.code)

            return c_rapp

        if cls is T.Lam:
            body_code = go(t.body)
            names = prep.free_vars[id(t)]
            rhos = prep.free_regions[id(t)]
            param = t.param
            body = t.body
            rho = t.rho

            def c_lam(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                venv = {name: env[name] for name in names}
                crenv = {}
                if not rt.ml_mode:
                    # prepare()'s capture sets exclude top regions, so
                    # resolve() reduces to the renv lookup.
                    rget = renv.get
                    for r in rhos:
                        region = rget(r)
                        if region is None:
                            raise RuntimeFault(
                                f"unbound region variable {r.display()}"
                            )
                        crenv[r] = region
                region = _alloc(rt, rho, renv, 1 + len(venv) + len(crenv))
                return RClos(param, body, venv, crenv, region, code=body_code)

            return c_lam

        if cls is T.FunDef:
            body_code = go(t.body)
            names = prep.free_vars[id(t)]
            rhos = prep.free_regions[id(t)]
            fname = t.fname
            rparams = t.rparams
            param = t.param
            body = t.body
            rho = t.rho
            dropped = frozenset()
            if drop_regions is not None:
                dropped = drop_regions.dropped_indices_for(id(t))

            def c_fun(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                venv = {name: env[name] for name in names}
                crenv = {}
                if not rt.ml_mode:
                    rget = renv.get
                    for r in rhos:
                        region = rget(r)
                        if region is None:
                            raise RuntimeFault(
                                f"unbound region variable {r.display()}"
                            )
                        crenv[r] = region
                region = _alloc(rt, rho, renv, 1 + len(venv) + len(crenv))
                return RFunClos(fname, rparams, param, body, venv, crenv,
                                region, dropped, code=body_code)

            return c_fun

        if cls is T.Pair:
            return _compile_pair_like(t.fst, t.snd, t.rho, RPair)

        if cls is T.Select:
            pair_code = go(t.pair)
            want_fst = t.index == 1
            pair_imm = _immediate(t.pair)
            if pair_imm is None:

                def c_select(rt, env, renv):
                    st = rt.stats
                    st.steps += 1
                    if rt.checking:
                        rt.check_limits()
                    pair = pair_code(rt, env, renv)
                    if type(pair) is not RPair:
                        raise RuntimeFault("#i of a non-pair value")
                    if rt.sanitize:
                        rt.san_check(pair)
                    return pair.fst if want_fst else pair.snd

                return c_select

            def c_select_imm(rt, env, renv):
                st = rt.stats
                if rt.checking:
                    st.steps += 1
                    rt.check_limits()
                    pair = pair_code(rt, env, renv)
                else:
                    st.steps += 2
                    pair = pair_imm(env)
                if type(pair) is not RPair:
                    raise RuntimeFault("#i of a non-pair value")
                if rt.sanitize:
                    rt.san_check(pair)
                return pair.fst if want_fst else pair.snd

            return c_select_imm

        if cls is T.Cons:
            return _compile_pair_like(t.head, t.tail, t.rho, RCons)

        if cls is T.MkRef:
            init_code = go(t.init)
            rho = t.rho

            def c_mkref(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                init = init_code(rt, env, renv)
                rt.temps.append(init)
                try:
                    region = _alloc(rt, rho, renv, 1)
                finally:
                    rt.temps.pop()
                return RRef(init, region)

            return c_mkref

        if cls is T.Deref:
            ref_code = go(t.ref)
            ref_imm = _immediate(t.ref)
            if ref_imm is None:

                def c_deref(rt, env, renv):
                    st = rt.stats
                    st.steps += 1
                    if rt.checking:
                        rt.check_limits()
                    ref = ref_code(rt, env, renv)
                    if rt.sanitize:
                        rt.san_check(ref)
                        rt.san_check(ref.contents)
                    return ref.contents

                return c_deref

            def c_deref_imm(rt, env, renv):
                st = rt.stats
                if rt.checking:
                    st.steps += 1
                    rt.check_limits()
                    ref = ref_code(rt, env, renv)
                else:
                    st.steps += 2
                    ref = ref_imm(env)
                if rt.sanitize:
                    rt.san_check(ref)
                    rt.san_check(ref.contents)
                return ref.contents

            return c_deref_imm

        if cls is T.Assign:
            ref_code = go(t.ref)
            value_code = go(t.value)

            def c_assign(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                ref = ref_code(rt, env, renv)
                rt.temps.append(ref)
                try:
                    value = value_code(rt, env, renv)
                finally:
                    rt.temps.pop()
                if rt.sanitize:
                    rt.san_check(ref)
                    rt.san_check(value)
                ref.contents = value
                rt.collector.note_write(ref)
                return UNIT

            return c_assign

        if cls is T.LetData:
            body_code = go(t.body)

            def c_letdata(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                return body_code(rt, env, renv)

            return c_letdata

        if cls is T.DataCon:
            conname = t.conname
            rho = t.rho
            if t.arg is None:

                def c_datacon0(rt, env, renv):
                    st = rt.stats
                    st.steps += 1
                    if rt.checking:
                        rt.check_limits()
                    region = _alloc(rt, rho, renv, 2)
                    return RData(conname, None, region)

                return c_datacon0
            arg_code = go(t.arg)

            def c_datacon(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                payload = arg_code(rt, env, renv)
                rt.temps.append(payload)
                try:
                    region = _alloc(rt, rho, renv, 2)
                finally:
                    rt.temps.pop()
                return RData(conname, payload, region)

            return c_datacon

        if cls is T.Case:
            scrut_code = go(t.scrutinee)
            branches = tuple(
                (br.conname, br.binder, go(br.body)) for br in t.branches
            )

            def c_case(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                scrut = scrut_code(rt, env, renv)
                if rt.sanitize:
                    rt.san_check(scrut)
                for conname, binder, body_code in branches:
                    if conname is not None:
                        if not isinstance(scrut, RData):
                            raise RuntimeFault("case on a non-datatype value")
                        if conname != scrut.conname:
                            continue
                    if binder is None:
                        return body_code(rt, env, renv)
                    bound = scrut.payload if conname is not None else scrut
                    saved = env.get(binder, _MISSING)
                    env[binder] = bound
                    try:
                        return body_code(rt, env, renv)
                    finally:
                        if saved is _MISSING:
                            del env[binder]
                        else:
                            env[binder] = saved
                raise RuntimeFault(
                    f"Match: no case branch for constructor {scrut.conname}"
                )

            return c_case

        if cls is T.LetExn:
            body_code = go(t.body)
            key = _exn_key(t.exname)

            def c_letexn(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                stamp = next(rt._exn_stamps)
                saved = env.get(key, _MISSING)
                env[key] = stamp
                try:
                    return body_code(rt, env, renv)
                finally:
                    if saved is _MISSING:
                        del env[key]
                    else:
                        env[key] = saved

            return c_letexn

        if cls is T.Con:
            exname = t.exname
            key = _exn_key(exname)
            rho = t.rho
            arg_code = go(t.arg) if t.arg is not None else None

            def c_con(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                payload = UNIT
                if arg_code is not None:
                    payload = arg_code(rt, env, renv)
                rt.temps.append(payload)
                try:
                    region = _alloc(rt, rho, renv, 2)
                finally:
                    rt.temps.pop()
                stamp = env[key]
                return RExn(stamp, exname, payload, region)

            return c_con

        if cls is T.Raise:
            exn_code = go(t.exn)

            def c_raise(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                raise MLRaise(exn_code(rt, env, renv))

            return c_raise

        if cls is T.Handle:
            body_code = go(t.body)
            handler_code = go(t.handler)
            key = _exn_key(t.exname)
            binder = t.binder

            def c_handle(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                try:
                    return body_code(rt, env, renv)
                except MLRaise as exc:
                    stamp = env[key]
                    if exc.value.stamp != stamp:
                        raise
                    if binder is None:
                        return handler_code(rt, env, renv)
                    saved = env.get(binder, _MISSING)
                    env[binder] = exc.value.payload
                    try:
                        return handler_code(rt, env, renv)
                    finally:
                        if saved is _MISSING:
                            del env[binder]
                        else:
                            env[binder] = saved

            return c_handle

        raise TypeError(f"compile_term: unknown term {cls.__name__}")

    def _compile_app(t: T.App):
        fn_code = go(t.fn)
        arg_code = go(t.arg)
        fn_imm = _immediate(t.fn)
        arg_imm = _immediate(t.arg)

        # Every variant inlines the hot RClos case of :func:`_invoke`
        # (one Python frame per MiniML call); RFunClos and faults take
        # the out-of-line path.

        def c_app(rt, env, renv):
            st = rt.stats
            st.steps += 1
            if rt.checking:
                rt.check_limits()
            fn = fn_code(rt, env, renv)
            temps = rt.temps
            temps.append(fn)
            try:
                arg = arg_code(rt, env, renv)
            finally:
                temps.pop()
            if rt.sanitize:
                rt.san_check(fn)
                rt.san_check(arg)
            if type(fn) is not RClos:
                return _invoke(rt, fn, arg)
            call_env = dict(fn.venv)
            call_env[fn.param] = arg
            rt.depth += 1
            if rt.depth > rt.flags.max_depth:
                rt.depth -= 1
                raise InterpreterLimit(
                    f"call depth exceeded ({rt.flags.max_depth})",
                    stats=rt.stats,
                )
            rt.env_stack.append(call_env)
            try:
                code = fn.code
                if code is None:
                    return rt.ev(fn.body, call_env, dict(fn.renv))
                return code(rt, call_env, dict(fn.renv))
            finally:
                rt.env_stack.pop()
                rt.depth -= 1

        if fn_imm is None and arg_imm is None:
            return c_app
        if arg_imm is not None:
            # The argument cannot allocate: the callee root push around
            # its evaluation is unobservable.
            if fn_imm is not None:

                def c_app_ii(rt, env, renv):
                    if rt.checking:
                        return c_app(rt, env, renv)
                    rt.stats.steps += 3
                    fn = fn_imm(env)
                    arg = arg_imm(env)
                    if type(fn) is not RClos:
                        return _invoke(rt, fn, arg)
                    call_env = dict(fn.venv)
                    call_env[fn.param] = arg
                    rt.depth += 1
                    if rt.depth > rt.flags.max_depth:
                        rt.depth -= 1
                        raise InterpreterLimit(
                            f"call depth exceeded ({rt.flags.max_depth})",
                            stats=rt.stats,
                        )
                    rt.env_stack.append(call_env)
                    try:
                        code = fn.code
                        if code is None:
                            return rt.ev(fn.body, call_env, dict(fn.renv))
                        return code(rt, call_env, dict(fn.renv))
                    finally:
                        rt.env_stack.pop()
                        rt.depth -= 1

                return c_app_ii

            def c_app_xi(rt, env, renv):
                if rt.checking:
                    return c_app(rt, env, renv)
                rt.stats.steps += 1
                fn = fn_code(rt, env, renv)
                # The argument's step counts only after the operator is
                # evaluated — fn_code can allocate, and a trace event or
                # GC inside it must observe the exact ev-order count.
                rt.stats.steps += 1
                arg = arg_imm(env)
                if type(fn) is not RClos:
                    return _invoke(rt, fn, arg)
                call_env = dict(fn.venv)
                call_env[fn.param] = arg
                rt.depth += 1
                if rt.depth > rt.flags.max_depth:
                    rt.depth -= 1
                    raise InterpreterLimit(
                        f"call depth exceeded ({rt.flags.max_depth})",
                        stats=rt.stats,
                    )
                rt.env_stack.append(call_env)
                try:
                    code = fn.code
                    if code is None:
                        return rt.ev(fn.body, call_env, dict(fn.renv))
                    return code(rt, call_env, dict(fn.renv))
                finally:
                    rt.env_stack.pop()
                    rt.depth -= 1

            return c_app_xi

        def c_app_ix(rt, env, renv):
            if rt.checking:
                return c_app(rt, env, renv)
            rt.stats.steps += 2
            fn = fn_imm(env)
            temps = rt.temps
            temps.append(fn)
            try:
                arg = arg_code(rt, env, renv)
            finally:
                temps.pop()
            if type(fn) is not RClos:
                return _invoke(rt, fn, arg)
            call_env = dict(fn.venv)
            call_env[fn.param] = arg
            rt.depth += 1
            if rt.depth > rt.flags.max_depth:
                rt.depth -= 1
                raise InterpreterLimit(
                    f"call depth exceeded ({rt.flags.max_depth})",
                    stats=rt.stats,
                )
            rt.env_stack.append(call_env)
            try:
                code = fn.code
                if code is None:
                    return rt.ev(fn.body, call_env, dict(fn.renv))
                return code(rt, call_env, dict(fn.renv))
            finally:
                rt.env_stack.pop()
                rt.depth -= 1

        return c_app_ix

    def _compile_pair_like(fst_t: T.Term, snd_t: T.Term, rho, ctor):
        """``Pair`` and ``Cons`` share one shape: evaluate two components
        (each rooted across the rest of the node — the second component
        and the cell allocation can both collect), allocate 2 words,
        build the cell.  Immediate components skip their closure frames;
        the root pushes stay because the allocation can observe them."""
        fst_code = go(fst_t)
        snd_code = go(snd_t)
        fst_imm = _immediate(fst_t)
        snd_imm = _immediate(snd_t)

        def c_cell(rt, env, renv):
            st = rt.stats
            st.steps += 1
            if rt.checking:
                rt.check_limits()
            temps = rt.temps
            fst = fst_code(rt, env, renv)
            temps.append(fst)
            try:
                snd = snd_code(rt, env, renv)
                temps.append(snd)
                try:
                    region = _alloc(rt, rho, renv, 2)
                finally:
                    temps.pop()
            finally:
                temps.pop()
            return ctor(fst, snd, region)

        if fst_imm is None and snd_imm is None:
            return c_cell

        if fst_imm is not None and snd_imm is not None:

            def c_cell_imm(rt, env, renv):
                if rt.checking:
                    return c_cell(rt, env, renv)
                rt.stats.steps += 3
                temps = rt.temps
                fst = fst_imm(env)
                temps.append(fst)
                try:
                    snd = snd_imm(env)
                    temps.append(snd)
                    try:
                        region = _alloc(rt, rho, renv, 2)
                    finally:
                        temps.pop()
                finally:
                    temps.pop()
                return ctor(fst, snd, region)

            return c_cell_imm

        if fst_imm is not None:
            # fst immediate, snd not: fst's step precedes snd's
            # evaluation in ev order, so the batch is exact.

            def c_cell_iximm(rt, env, renv):
                if rt.checking:
                    return c_cell(rt, env, renv)
                rt.stats.steps += 2
                temps = rt.temps
                fst = fst_imm(env)
                temps.append(fst)
                try:
                    snd = snd_code(rt, env, renv)
                    temps.append(snd)
                    try:
                        region = _alloc(rt, rho, renv, 2)
                    finally:
                        temps.pop()
                finally:
                    temps.pop()
                return ctor(fst, snd, region)

            return c_cell_iximm

        def c_cell_xiimm(rt, env, renv):
            if rt.checking:
                return c_cell(rt, env, renv)
            rt.stats.steps += 1
            temps = rt.temps
            fst = fst_code(rt, env, renv)
            # snd's step counts after fst's evaluation (ev order —
            # fst_code can allocate and emit step-stamped events).
            rt.stats.steps += 1
            temps.append(fst)
            try:
                snd = snd_imm(env)
                temps.append(snd)
                try:
                    region = _alloc(rt, rho, renv, 2)
                finally:
                    temps.pop()
            finally:
                temps.pop()
            return ctor(fst, snd, region)

        return c_cell_xiimm

    def _compile_direct_call(t: T.App):
        """``(f [rhos] at r) arg`` without materializing the intermediate
        specialized closure — the RApp and Var nodes are *not* visited
        (no step counted for them), exactly like ``Interp._direct_call``.
        The ``temps`` push around region binding is elided: binding only
        resolves regions, so no collection can observe it."""
        rapp: T.RApp = t.fn  # type: ignore[assignment]
        fname = rapp.fn.name  # type: ignore[union-attr]
        rargs = rapp.rargs
        arg_code = go(t.arg)
        arg_imm = _immediate(t.arg)

        if not rargs:
            # No region arguments (the common case for local helpers):
            # region binding degenerates to copying the capture —
            # ``zip(fn.rparams, ())`` is empty whatever the formals are,
            # in ``_bind_regions`` and here alike.

            def c_direct0(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                fn = env[fname]
                if type(fn) is not RFunClos:
                    raise RuntimeFault("region application of a non-fun value")
                st.direct_calls += 1
                arg = arg_code(rt, env, renv)
                if rt.sanitize:
                    rt.san_check(fn)
                    rt.san_check(arg)
                if fn.dropped:
                    call_renv = rt._bind_regions(fn, rargs, renv)
                else:
                    call_renv = dict(fn.renv)
                call_env = dict(fn.venv)
                call_env[fn.fname] = fn
                call_env[fn.param] = arg
                rt.depth += 1
                if rt.depth > rt.flags.max_depth:
                    rt.depth -= 1
                    raise InterpreterLimit(
                        f"call depth exceeded ({rt.flags.max_depth})",
                        stats=rt.stats,
                    )
                rt.env_stack.append(call_env)
                try:
                    code = fn.code
                    if code is None:
                        return rt.ev(fn.body, call_env, dict(call_renv))
                    return code(rt, call_env, call_renv)
                finally:
                    rt.env_stack.pop()
                    rt.depth -= 1

            if arg_imm is None:
                return c_direct0

            def c_direct0_imm(rt, env, renv):
                if rt.checking:
                    return c_direct0(rt, env, renv)
                st = rt.stats
                st.steps += 2
                fn = env[fname]
                if type(fn) is not RFunClos:
                    raise RuntimeFault("region application of a non-fun value")
                st.direct_calls += 1
                if fn.dropped:
                    call_renv = rt._bind_regions(fn, rargs, renv)
                else:
                    call_renv = dict(fn.renv)
                call_env = dict(fn.venv)
                call_env[fn.fname] = fn
                call_env[fn.param] = arg_imm(env)
                rt.depth += 1
                if rt.depth > rt.flags.max_depth:
                    rt.depth -= 1
                    raise InterpreterLimit(
                        f"call depth exceeded ({rt.flags.max_depth})",
                        stats=rt.stats,
                    )
                rt.env_stack.append(call_env)
                try:
                    code = fn.code
                    if code is None:
                        return rt.ev(fn.body, call_env, dict(call_renv))
                    return code(rt, call_env, call_renv)
                finally:
                    rt.env_stack.pop()
                    rt.depth -= 1

            return c_direct0_imm

        def c_direct(rt, env, renv):
            st = rt.stats
            st.steps += 1
            if rt.checking:
                rt.check_limits()
            fn = env[fname]
            if type(fn) is not RFunClos:
                raise RuntimeFault("region application of a non-fun value")
            st.direct_calls += 1
            arg = arg_code(rt, env, renv)
            if rt.sanitize:
                rt.san_check(fn)
                rt.san_check(arg)
            # Inline ``_bind_regions`` for the no-drop case (drops are
            # rare and keep the stats-bearing out-of-line path).
            if fn.dropped:
                call_renv = rt._bind_regions(fn, rargs, renv)
            else:
                call_renv = dict(fn.renv)
                if rt.ml_mode:
                    g = rt.heap.global_region
                    for formal, _actual in zip(fn.rparams, rargs):
                        call_renv[formal] = g
                else:
                    g = rt.heap.global_region
                    rget = renv.get
                    for formal, actual in zip(fn.rparams, rargs):
                        if actual.top:
                            call_renv[formal] = g
                        else:
                            region = rget(actual)
                            if region is None:
                                raise RuntimeFault(
                                    f"unbound region variable {actual.display()}"
                                )
                            call_renv[formal] = region
            call_env = dict(fn.venv)
            call_env[fn.fname] = fn
            call_env[fn.param] = arg
            rt.depth += 1
            if rt.depth > rt.flags.max_depth:
                rt.depth -= 1
                raise InterpreterLimit(
                    f"call depth exceeded ({rt.flags.max_depth})", stats=rt.stats
                )
            rt.env_stack.append(call_env)
            try:
                code = fn.code
                if code is None:
                    return rt.ev(fn.body, call_env, dict(call_renv))
                return code(rt, call_env, call_renv)
            finally:
                rt.env_stack.pop()
                rt.depth -= 1

        if arg_imm is None:
            return c_direct

        def c_direct_imm(rt, env, renv):
            if rt.checking:
                return c_direct(rt, env, renv)
            st = rt.stats
            st.steps += 2
            fn = env[fname]
            if type(fn) is not RFunClos:
                raise RuntimeFault("region application of a non-fun value")
            st.direct_calls += 1
            arg = arg_imm(env)
            if fn.dropped:
                call_renv = rt._bind_regions(fn, rargs, renv)
            else:
                call_renv = dict(fn.renv)
                if rt.ml_mode:
                    g = rt.heap.global_region
                    for formal, _actual in zip(fn.rparams, rargs):
                        call_renv[formal] = g
                else:
                    g = rt.heap.global_region
                    rget = renv.get
                    for formal, actual in zip(fn.rparams, rargs):
                        if actual.top:
                            call_renv[formal] = g
                        else:
                            region = rget(actual)
                            if region is None:
                                raise RuntimeFault(
                                    f"unbound region variable {actual.display()}"
                                )
                            call_renv[formal] = region
            call_env = dict(fn.venv)
            call_env[fn.fname] = fn
            call_env[fn.param] = arg
            rt.depth += 1
            if rt.depth > rt.flags.max_depth:
                rt.depth -= 1
                raise InterpreterLimit(
                    f"call depth exceeded ({rt.flags.max_depth})", stats=rt.stats
                )
            rt.env_stack.append(call_env)
            try:
                code = fn.code
                if code is None:
                    return rt.ev(fn.body, call_env, dict(call_renv))
                return code(rt, call_env, call_renv)
            finally:
                rt.env_stack.pop()
                rt.depth -= 1

        return c_direct_imm

    def _compile_prim(t: T.Prim):
        op = t.op
        rho = t.rho
        arg_codes = [go(a) for a in t.args]
        arity, kernel, allocates = _prim_kernel(op, rho)
        if arity == 2 and len(arg_codes) == 2:
            a_code, b_code = arg_codes

            def c_prim2(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                temps = rt.temps
                a = a_code(rt, env, renv)
                temps.append(a)
                try:
                    b = b_code(rt, env, renv)
                    temps.append(b)
                    try:
                        if rt.sanitize:
                            rt.san_check(a)
                            rt.san_check(b)
                        return kernel(rt, a, b, renv)
                    finally:
                        temps.pop()
                finally:
                    temps.pop()

            a_imm = _immediate(t.args[0])
            b_imm = _immediate(t.args[1])
            if a_imm is None and b_imm is None:
                return c_prim2
            if not allocates:
                # Non-allocating kernel: no collection can happen after
                # the last non-immediate argument, so any root push whose
                # extent is immediate evaluation + the kernel is
                # unobservable.
                if a_imm is not None and b_imm is not None:

                    def c_prim2_ii(rt, env, renv):
                        if rt.checking:
                            return c_prim2(rt, env, renv)
                        rt.stats.steps += 3
                        return kernel(rt, a_imm(env), b_imm(env), renv)

                    return c_prim2_ii
                if a_imm is not None:
                    # b may allocate: a must stay rooted across it.

                    def c_prim2_ix(rt, env, renv):
                        if rt.checking:
                            return c_prim2(rt, env, renv)
                        rt.stats.steps += 2
                        a = a_imm(env)
                        rt.temps.append(a)
                        try:
                            b = b_code(rt, env, renv)
                        finally:
                            rt.temps.pop()
                        return kernel(rt, a, b, renv)

                    return c_prim2_ix

                def c_prim2_xi(rt, env, renv):
                    if rt.checking:
                        return c_prim2(rt, env, renv)
                    rt.stats.steps += 1
                    a = a_code(rt, env, renv)
                    # b's step counts after a's evaluation (ev order —
                    # a_code can allocate and emit step-stamped events).
                    rt.stats.steps += 1
                    return kernel(rt, a, b_imm(env), renv)

                return c_prim2_xi

            # Allocating kernel: the kernel's own allocation can trigger
            # a collection, so both roots must be live at that point —
            # only the immediates' closure frames are saved.
            if a_imm is not None and b_imm is not None:

                def c_prim2_alloc_ii(rt, env, renv):
                    if rt.checking:
                        return c_prim2(rt, env, renv)
                    rt.stats.steps += 3
                    temps = rt.temps
                    a = a_imm(env)
                    temps.append(a)
                    try:
                        b = b_imm(env)
                        temps.append(b)
                        try:
                            return kernel(rt, a, b, renv)
                        finally:
                            temps.pop()
                    finally:
                        temps.pop()

                return c_prim2_alloc_ii
            if a_imm is not None:

                def c_prim2_alloc_ix(rt, env, renv):
                    if rt.checking:
                        return c_prim2(rt, env, renv)
                    rt.stats.steps += 2
                    temps = rt.temps
                    a = a_imm(env)
                    temps.append(a)
                    try:
                        b = b_code(rt, env, renv)
                        temps.append(b)
                        try:
                            return kernel(rt, a, b, renv)
                        finally:
                            temps.pop()
                    finally:
                        temps.pop()

                return c_prim2_alloc_ix

            def c_prim2_alloc_xi(rt, env, renv):
                if rt.checking:
                    return c_prim2(rt, env, renv)
                rt.stats.steps += 1
                temps = rt.temps
                a = a_code(rt, env, renv)
                # b's step counts after a's evaluation (ev order — a_code
                # can allocate and emit step-stamped events).
                rt.stats.steps += 1
                temps.append(a)
                try:
                    b = b_imm(env)
                    temps.append(b)
                    try:
                        return kernel(rt, a, b, renv)
                    finally:
                        temps.pop()
                finally:
                    temps.pop()

            return c_prim2_alloc_xi
        if arity == 1 and len(arg_codes) == 1:
            (a_code,) = arg_codes

            def c_prim1(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                a = a_code(rt, env, renv)
                rt.temps.append(a)
                try:
                    if rt.sanitize:
                        rt.san_check(a)
                    return kernel(rt, a, renv)
                finally:
                    rt.temps.pop()

            a_imm = _immediate(t.args[0])
            if a_imm is None:
                return c_prim1
            if not allocates:

                def c_prim1_imm(rt, env, renv):
                    if rt.checking:
                        return c_prim1(rt, env, renv)
                    rt.stats.steps += 2
                    return kernel(rt, a_imm(env), renv)

                return c_prim1_imm

            def c_prim1_alloc_imm(rt, env, renv):
                if rt.checking:
                    return c_prim1(rt, env, renv)
                rt.stats.steps += 2
                a = a_imm(env)
                rt.temps.append(a)
                try:
                    return kernel(rt, a, renv)
                finally:
                    rt.temps.pop()

            return c_prim1_alloc_imm

        # Unknown op or arity mismatch: evaluate like ``Interp._prim``
        # and let ``_apply_prim`` produce the exact runtime error.
        def c_primn(rt, env, renv):
            st = rt.stats
            st.steps += 1
            if rt.checking:
                rt.check_limits()
            args = []
            pushed = 0
            temps = rt.temps
            try:
                for a_code in arg_codes:
                    v = a_code(rt, env, renv)
                    args.append(v)
                    temps.append(v)
                    pushed += 1
                return rt._apply_prim(op, args, rho, renv)
            finally:
                for _ in range(pushed):
                    temps.pop()

        return c_primn

    def _compile_letregion(t: T.Letregion):
        body_code = go(t.body)
        if not t.rhos:

            def c_passthrough(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                return body_code(rt, env, renv)

            return c_passthrough

        # (rho, display string, kind, finite?, capacity): the multiplicity
        # decision is static per region variable.
        plan = []
        for rho in t.rhos:
            kind = INFINITE
            capacity = None
            if multiplicity is not None and multiplicity.is_finite(rho):
                kind = FINITE
                capacity = multiplicity.finite[rho]
            plan.append((rho, rho.display(), kind, kind == FINITE, capacity))
        plan = tuple(plan)
        nrhos = len(plan)
        all_infinite = all(kind == INFINITE for _, _, kind, _, _ in plan)

        if len(plan) == 1:
            # The overwhelmingly common shape — one region per letregion
            # — gets a loop-free variant (no ``created`` list, no tuple
            # packing/unpacking per region).
            rho1, display1, kind1, finite1, capacity1 = plan[0]

            def c_letregion1(rt, env, renv):
                st = rt.stats
                st.steps += 1
                if rt.checking:
                    rt.check_limits()
                if rt.ml_mode:
                    return body_code(rt, env, renv)
                st.letregions += 1
                heap = rt.heap
                tracing = heap.trace.enabled
                if tracing:
                    region = heap.new_region(display1, kind1, capacity1)
                else:
                    stack = heap.region_stack
                    region = Region(next(heap._ids), display1, kind1, capacity1)
                    stack.append(region)
                    if finite1:
                        st.finite_regions_created += 1
                    else:
                        st.infinite_regions_created += 1
                    depth = len(stack)
                    if depth > st.max_region_stack:
                        st.max_region_stack = depth
                saved = renv.get(rho1, _MISSING)
                renv[rho1] = region
                try:
                    value = body_code(rt, env, renv)
                except BaseException:
                    # Unwinding: pop the region but never inject a
                    # collection — the in-flight exception value is not
                    # on the shadow stack.
                    if tracing:
                        heap.dealloc_region(region)
                    else:
                        _dealloc_fast(heap, st, region)
                    if saved is _MISSING:
                        del renv[rho1]
                    else:
                        renv[rho1] = saved
                    raise
                plan_obj = heap.flags.fault_plan if rt.use_gc else None
                if plan_obj is not None:
                    # A fault plan can inject a collection at this
                    # dealloc point; root the result for its duration.
                    rt.temps.append(value)
                try:
                    if tracing:
                        heap.dealloc_region(region)
                    else:
                        _dealloc_fast(heap, st, region)
                    if saved is _MISSING:
                        del renv[rho1]
                    else:
                        renv[rho1] = saved
                    if plan_obj is not None:
                        kind2 = plan_obj.decide_dealloc(st.region_deallocs - 1)
                        if kind2 is not None:
                            st.gc_injected += 1
                            rt.collector.collect_kind(kind2, rt.roots())
                finally:
                    if plan_obj is not None:
                        rt.temps.pop()
                return value

            return c_letregion1

        def c_letregion(rt, env, renv):
            st = rt.stats
            st.steps += 1
            if rt.checking:
                rt.check_limits()
            if rt.ml_mode:
                return body_code(rt, env, renv)
            st.letregions += 1
            heap = rt.heap
            # Region push/pop are inlined from Heap.new_region /
            # Heap.dealloc_region (the region lifecycle is the hottest
            # non-body work of a letregion); tracing delegates to the
            # heap methods so every region_push/region_pop event is
            # emitted exactly as the tree walker would.
            tracing = heap.trace.enabled
            stack = heap.region_stack
            created = []
            cappend = created.append
            renv_get = renv.get
            if all_infinite and not tracing:
                # Every region in the plan is infinite: the per-region
                # stat updates batch (n unit increments equal one += n,
                # and the stack only grows during the pushes, so the
                # final depth is the running maximum).
                ids = heap._ids
                sappend = stack.append
                for rho, display, kind, finite, capacity in plan:
                    region = Region(next(ids), display, INFINITE, None)
                    sappend(region)
                    cappend((rho, region, renv_get(rho, _MISSING)))
                    renv[rho] = region
                st.infinite_regions_created += nrhos
                depth = len(stack)
                if depth > st.max_region_stack:
                    st.max_region_stack = depth
            else:
                for rho, display, kind, finite, capacity in plan:
                    if tracing:
                        region = heap.new_region(display, kind, capacity)
                    else:
                        region = Region(next(heap._ids), display, kind, capacity)
                        stack.append(region)
                        if finite:
                            st.finite_regions_created += 1
                        else:
                            st.infinite_regions_created += 1
                        depth = len(stack)
                        if depth > st.max_region_stack:
                            st.max_region_stack = depth
                    cappend((rho, region, renv_get(rho, _MISSING)))
                    renv[rho] = region
            try:
                value = body_code(rt, env, renv)
            except BaseException:
                # Unwinding (an ML exception or a fault): pop the regions
                # but never inject a collection — the in-flight exception
                # value is not on the shadow stack.
                for rho, region, saved in reversed(created):
                    if tracing:
                        heap.dealloc_region(region)
                    else:
                        _dealloc_fast(heap, st, region)
                    if saved is _MISSING:
                        del renv[rho]
                    else:
                        renv[rho] = saved
                raise
            # maybe_gc_at_dealloc inline: without a fault plan the policy
            # never collects at deallocation points, so the temps push
            # rooting the result (and its try/finally) is unobservable
            # and elided.
            plan_obj = heap.flags.fault_plan if rt.use_gc else None
            if plan_obj is None:
                for rho, region, saved in reversed(created):
                    if tracing:
                        heap.dealloc_region(region)
                    else:
                        _dealloc_fast(heap, st, region)
                    if saved is _MISSING:
                        del renv[rho]
                    else:
                        renv[rho] = saved
                return value
            # Root the result for the duration of the deallocations so a
            # fault-plan-injected collection at a dealloc point traces it.
            rt.temps.append(value)
            try:
                for rho, region, saved in reversed(created):
                    if tracing:
                        heap.dealloc_region(region)
                    else:
                        _dealloc_fast(heap, st, region)
                    if saved is _MISSING:
                        del renv[rho]
                    else:
                        renv[rho] = saved
                    kind2 = plan_obj.decide_dealloc(st.region_deallocs - 1)
                    if kind2 is not None:
                        st.gc_injected += 1
                        rt.collector.collect_kind(kind2, rt.roots())
            finally:
                rt.temps.pop()
            return value

        return c_letregion

    return go(term)

"""The region heap: region descriptors, fixed-size pages, the region
stack, and word-exact accounting (paper Sections 1 and 4.2).

Regions come in two representations, as in the MLKit:

* **finite** regions hold exactly one value of statically known size and
  live "on the runtime stack" (not collected; their contents are traced
  as roots but never reclaimed before the region is popped);
* **infinite** regions are lists of fixed-size pages in the heap and are
  the ones a reference-tracing collection evacuates.

Pages are real objects here, not a derived count: every infinite region
owns a ``page_list`` of :class:`Page` descriptors drawn from the
heap-wide free-page list (``Heap.free_pages``), so

* region deallocation returns the whole list in O(pages),
* ``RunStats`` can report ``peak_pages`` (page residency, the real
  footprint a pager sees) next to ``peak_words`` (live data), and
* internal fragmentation is measurable: a value never spans a page
  boundary, so growing a region closes the current partial page and the
  unused tail is *waste* (``RunStats.page_waste_words``).

Each page carries a generation ``stamp`` bumped when the page returns to
the free list; the pointer sanitizer records the birth page of every
boxed value so a recycled page serving a *new* region cannot validate an
old value even if its region descriptor were forged (see
:mod:`repro.runtime.values` and the page-witness checks in
:mod:`repro.runtime.gc`).

``letregion`` pushes regions on the region stack and pops (deallocates)
them on exit.  A deallocated region's descriptor stays around with
``alive = False`` so the collector can *detect* dangling pointers — the
observable fault of the paper's Figure 1.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..config import RuntimeFlags
from ..core.errors import HeapLimitError, UseAfterFreeError
from .stats import RunStats
from .trace import NULL_TRACER

__all__ = ["Page", "NO_PAGE", "Region", "Heap", "INFINITE", "FINITE"]

INFINITE = "infinite"
FINITE = "finite"


class Page:
    """One fixed-size region page.

    The only state a page carries is its generation ``stamp``, bumped
    every time the page is returned to the heap-wide free list: a boxed
    value's recorded ``page_san`` trailing its page's stamp proves the
    page was recycled after the value was placed on it.
    """

    __slots__ = ("stamp",)

    def __init__(self) -> None:
        self.stamp = 0


#: Shared sentinel page for regions that own no pages (finite regions,
#: fresh infinite regions).  Its stamp is never bumped — it is never on
#: any page list or the free list — so a value born "on" it always
#: passes the page-witness check and liveness rests on the region stamp
#: alone, exactly the pre-page behaviour for stack data.
NO_PAGE = Page()


class Region:
    """A region descriptor."""

    __slots__ = ("ident", "name", "kind", "alive", "words", "capacity", "young_words",
                 "stamp", "page_list", "cur_page", "cur_free", "waste_words")

    def __init__(self, ident: int, name: str, kind: str, capacity: Optional[int] = None) -> None:
        self.ident = ident
        self.name = name
        self.kind = kind
        self.alive = True
        self.words = 0
        self.capacity = capacity  # finite regions only
        self.young_words = 0      # words allocated since the last minor GC
        #: Generation stamp for the pointer sanitizer: bumped on every
        #: deallocation, so a value whose recorded stamp trails the
        #: descriptor's is provably stale even if the descriptor were
        #: ever reused.
        self.stamp = 0
        #: The pages this (infinite) region owns, allocation order.
        self.page_list: list[Page] = []
        #: The page new values land on: ``page_list[-1]`` or the shared
        #: :data:`NO_PAGE` sentinel while the region owns no pages.
        self.cur_page: Page = NO_PAGE
        #: Unused words remaining on ``cur_page``.
        self.cur_free = 0
        #: Words lost to closed partial pages (internal fragmentation):
        #: a value never spans a page boundary, so the tail of a page
        #: too small for the next value is waste until the region is
        #: collected or deallocated.
        self.waste_words = 0

    def pages(self, page_words: Optional[int] = None) -> int:
        """Number of pages this region currently owns.  ``page_words`` is
        accepted for backward compatibility and ignored — the count is
        the real ``page_list`` length, not a derived estimate."""
        return len(self.page_list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " (dead)"
        return (f"<region {self.name} {self.kind} {self.words}w "
                f"{len(self.page_list)}p{state}>")


class Heap:
    """The global region heap with word- and page-exact accounting."""

    def __init__(self, flags: RuntimeFlags, stats: RunStats) -> None:
        self.flags = flags
        self.stats = stats
        self.trace = flags.tracer if flags.tracer is not None else NULL_TRACER
        self._ids = itertools.count(1)
        self.global_region = Region(0, "rtop", INFINITE)
        self.region_stack: list[Region] = [self.global_region]
        #: Heap-wide free-page list (LIFO): pages released by region
        #: deallocation or collection are recycled before new ones are
        #: created, so steady-state page traffic allocates nothing.
        self.free_pages: list[Page] = []
        #: words of live data retained by the previous collection — the
        #: basis of the heap-to-live growth policy.
        self.live_after_gc = 0
        self.words_since_gc = 0
        #: the heap-to-live growth threshold, recomputed only when
        #: ``live_after_gc`` changes (it is consulted on every single
        #: allocation — caching it keeps float math off that path).
        self.gc_threshold = max(flags.initial_threshold, 0)

    # -- region lifecycle --------------------------------------------------------

    def new_region(self, name: str, kind: str = INFINITE, capacity: Optional[int] = None) -> Region:
        region = Region(next(self._ids), name, kind, capacity)
        self.region_stack.append(region)
        if kind == FINITE:
            self.stats.finite_regions_created += 1
        else:
            self.stats.infinite_regions_created += 1
        self.stats.max_region_stack = max(self.stats.max_region_stack, len(self.region_stack))
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "region_push",
                step=self.stats.steps,
                region=region.ident,
                name=name,
                kind=kind,
                capacity=capacity,
            )
        return region

    def dealloc_region(self, region: Region) -> None:
        """Pop a region: its words are reclaimed immediately and its
        pages returned to the free list in O(pages) (the region stack
        discipline), but the descriptor survives for dangling
        detection."""
        assert region.alive, "double deallocation of a region"
        region.alive = False
        region.stamp += 1
        self.stats.current_words -= region.words
        self.stats.region_deallocs += 1
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "region_pop",
                step=self.stats.steps,
                region=region.ident,
                name=region.name,
                words=region.words,
                pages=len(region.page_list),
                waste=region.waste_words + region.cur_free,
            )
        region.words = 0
        # A dead descriptor must never contribute stale young-word
        # counts to a later minor-collection decision (it is consulted
        # again only for dangle detection, but the invariant is cheap
        # and the audit trail matters): reset the generation accounting
        # with the rest of the region state.
        region.young_words = 0
        region.waste_words = 0
        self._release(region, len(region.page_list))
        region.cur_free = 0
        if self.region_stack and self.region_stack[-1] is region:
            self.region_stack.pop()
        else:  # pragma: no cover - regions are popped LIFO by construction
            self.region_stack.remove(region)

    # -- pages -------------------------------------------------------------------

    def _acquire(self, region: Region, n: int) -> None:
        """Append ``n`` pages to ``region``, recycling from the free
        list before creating new ones.  Updates the page residency
        gauge and its high-water mark — a collection's to-space reserve
        goes through here too, so ``peak_pages`` can crest mid-GC."""
        pages = region.page_list
        free_pages = self.free_pages
        stats = self.stats
        for _ in range(n):
            if free_pages:
                page = free_pages.pop()
                stats.pages_recycled += 1
            else:
                page = Page()
                stats.pages_created += 1
            pages.append(page)
        region.cur_page = pages[-1]
        stats.current_pages += n
        if stats.current_pages > stats.peak_pages:
            stats.peak_pages = stats.current_pages

    def _release(self, region: Region, n: int) -> None:
        """Return the last ``n`` pages of ``region`` to the free list,
        bumping each page's recycle stamp."""
        if n <= 0:
            return
        pages = region.page_list
        free_pages = self.free_pages
        for _ in range(n):
            page = pages.pop()
            page.stamp += 1
            free_pages.append(page)
        self.stats.current_pages -= n
        region.cur_page = pages[-1] if pages else NO_PAGE

    def _grow(self, region: Region, words: int) -> None:
        """Slow path of allocation: ``words`` does not fit on the
        current page.  Closes the partial page (its tail becomes
        internal fragmentation) and acquires enough fresh pages for the
        value — a value larger than one page takes a run of dedicated
        pages."""
        free = region.cur_free
        if free:
            region.waste_words += free
            self.stats.page_waste_words += free
        pw = self.flags.page_words
        n = -(-words // pw)
        self._acquire(region, n)
        region.cur_free = n * pw - words

    def repack_region(self, region: Region, new_words: int, copied_words: int,
                      reserve: bool) -> None:
        """Re-pack a collected region's pages to its ``new_words`` of
        compactly evacuated data.

        ``reserve`` models the policy split: a *copying* collection
        (Cheney) acquires to-space pages for the ``copied_words`` it
        evacuates **before** releasing from-space — the transient page
        spike ``peak_pages`` exists to expose — while *mark-compact*
        slides data in place and only ever releases the tail.  Word
        accounting is identical either way; only page residency
        differs."""
        stats = self.stats
        pw = self.flags.page_words
        pages = region.page_list
        keep = -(-new_words // pw) if new_words else 0
        if reserve and copied_words:
            self._acquire(region, -(-copied_words // pw))
        self._release(region, len(pages) - keep)
        region.cur_free = keep * pw - new_words if keep else 0
        if region.waste_words:
            region.waste_words = 0
        region.cur_page = pages[-1] if pages else NO_PAGE

    # -- allocation ---------------------------------------------------------------

    def alloc(self, region: Region, words: int) -> None:
        """Account for an allocation of ``words`` into ``region``."""
        if not region.alive:
            raise UseAfterFreeError(
                f"allocation into deallocated region {region.name} — region "
                "inference soundness violation"
            )
        tr = self.trace
        if region.kind == FINITE:
            self.stats.finite_allocations += 1
            if region.capacity is not None and region.words + words > region.capacity:
                # The static size estimate was too small: fall back to an
                # infinite representation (the MLKit would have chosen
                # infinite in the first place).
                region.kind = INFINITE
                if tr.enabled:
                    tr.emit(
                        "region_morph",
                        step=self.stats.steps,
                        region=region.ident,
                        name=region.name,
                    )
                # Materialize pages for the words the finite region
                # already holds: they move from the stack to the heap.
                if region.words:
                    self._grow(region, region.words)
        region.words += words
        region.young_words += words
        if region.kind == INFINITE:
            free = region.cur_free
            if words <= free:
                region.cur_free = free - words
            else:
                self._grow(region, words)
        self.stats.allocations += 1
        self.stats.allocated_words += words
        self.stats.current_words += words
        self.stats.note_current()
        self.words_since_gc += words
        if tr.enabled:
            tr.emit(
                "alloc",
                step=self.stats.steps,
                region=region.ident,
                words=words,
                region_words=region.words,
                region_pages=len(region.page_list),
                kind=region.kind,
            )
        if (
            self.flags.max_heap_words is not None
            and self.stats.current_words > self.flags.max_heap_words
        ):
            raise HeapLimitError(
                f"heap footprint {self.stats.current_words} words exceeds "
                f"max_heap_words={self.flags.max_heap_words}",
                stats=self.stats,
            )

    # -- GC policy -------------------------------------------------------------------

    def gc_decision(self) -> Optional[str]:
        """What kind of collection (``"auto"``/``"minor"``/``"major"``), if
        any, should run after the allocation that just completed.

        With a fault plan installed the plan is authoritative; otherwise
        ``gc_every_alloc`` and the heap-to-live growth policy apply.
        """
        plan = self.flags.fault_plan
        if plan is not None:
            return plan.decide_alloc(self.stats.allocations - 1)
        if self.flags.gc_every_alloc:
            return "auto"
        return "auto" if self.words_since_gc >= self.gc_threshold else None

    def dealloc_gc_decision(self) -> Optional[str]:
        """Plan-injected collection kind for the region deallocation that
        just completed (``None`` without a plan: the policy never collects
        at deallocation points)."""
        plan = self.flags.fault_plan
        if plan is None:
            return None
        return plan.decide_dealloc(self.stats.region_deallocs - 1)

    def should_collect(self) -> bool:
        return self.gc_decision() is not None

    def note_collection(self, live_words: int) -> None:
        self.live_after_gc = live_words
        self.words_since_gc = 0
        self.gc_threshold = max(
            self.flags.initial_threshold,
            int(live_words * (self.flags.heap_to_live - 1.0)),
        )

"""The region heap: region descriptors, pages, the region stack, and
word-exact accounting (paper Sections 1 and 4.2).

Regions come in two representations, as in the MLKit:

* **finite** regions hold exactly one value of statically known size and
  live "on the runtime stack" (not collected; their contents are traced
  as roots but never reclaimed before the region is popped);
* **infinite** regions are lists of fixed-size pages in the heap and are
  the ones a reference-tracing collection evacuates.

``letregion`` pushes regions on the region stack and pops (deallocates)
them on exit.  A deallocated region's descriptor stays around with
``alive = False`` so the collector can *detect* dangling pointers — the
observable fault of the paper's Figure 1.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..config import RuntimeFlags
from ..core.errors import HeapLimitError, UseAfterFreeError
from .stats import RunStats
from .trace import NULL_TRACER

__all__ = ["Region", "Heap", "INFINITE", "FINITE"]

INFINITE = "infinite"
FINITE = "finite"


class Region:
    """A region descriptor."""

    __slots__ = ("ident", "name", "kind", "alive", "words", "capacity", "young_words",
                 "stamp")

    def __init__(self, ident: int, name: str, kind: str, capacity: Optional[int] = None) -> None:
        self.ident = ident
        self.name = name
        self.kind = kind
        self.alive = True
        self.words = 0
        self.capacity = capacity  # finite regions only
        self.young_words = 0      # words allocated since the last minor GC
        #: Generation stamp for the pointer sanitizer: bumped on every
        #: deallocation, so a value whose recorded stamp trails the
        #: descriptor's is provably stale even if the descriptor were
        #: ever reused.
        self.stamp = 0

    def pages(self, page_words: int) -> int:
        if self.kind == FINITE:
            return 0
        return -(-self.words // page_words) if self.words else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "" if self.alive else " (dead)"
        return f"<region {self.name} {self.kind} {self.words}w{state}>"


class Heap:
    """The global region heap with word-exact accounting."""

    def __init__(self, flags: RuntimeFlags, stats: RunStats) -> None:
        self.flags = flags
        self.stats = stats
        self.trace = flags.tracer if flags.tracer is not None else NULL_TRACER
        self._ids = itertools.count(1)
        self.global_region = Region(0, "rtop", INFINITE)
        self.region_stack: list[Region] = [self.global_region]
        #: words of live data retained by the previous collection — the
        #: basis of the heap-to-live growth policy.
        self.live_after_gc = 0
        self.words_since_gc = 0
        #: the heap-to-live growth threshold, recomputed only when
        #: ``live_after_gc`` changes (it is consulted on every single
        #: allocation — caching it keeps float math off that path).
        self.gc_threshold = max(flags.initial_threshold, 0)

    # -- region lifecycle --------------------------------------------------------

    def new_region(self, name: str, kind: str = INFINITE, capacity: Optional[int] = None) -> Region:
        region = Region(next(self._ids), name, kind, capacity)
        self.region_stack.append(region)
        if kind == FINITE:
            self.stats.finite_regions_created += 1
        else:
            self.stats.infinite_regions_created += 1
        self.stats.max_region_stack = max(self.stats.max_region_stack, len(self.region_stack))
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "region_push",
                step=self.stats.steps,
                region=region.ident,
                name=name,
                kind=kind,
                capacity=capacity,
            )
        return region

    def dealloc_region(self, region: Region) -> None:
        """Pop a region: its words are reclaimed immediately (the region
        stack discipline), but the descriptor survives for dangling
        detection."""
        assert region.alive, "double deallocation of a region"
        region.alive = False
        region.stamp += 1
        self.stats.current_words -= region.words
        self.stats.region_deallocs += 1
        tr = self.trace
        if tr.enabled:
            tr.emit(
                "region_pop",
                step=self.stats.steps,
                region=region.ident,
                name=region.name,
                words=region.words,
            )
        region.words = 0
        if self.region_stack and self.region_stack[-1] is region:
            self.region_stack.pop()
        else:  # pragma: no cover - regions are popped LIFO by construction
            self.region_stack.remove(region)

    # -- allocation ---------------------------------------------------------------

    def alloc(self, region: Region, words: int) -> None:
        """Account for an allocation of ``words`` into ``region``."""
        if not region.alive:
            raise UseAfterFreeError(
                f"allocation into deallocated region {region.name} — region "
                "inference soundness violation"
            )
        tr = self.trace
        if region.kind == FINITE:
            self.stats.finite_allocations += 1
            if region.capacity is not None and region.words + words > region.capacity:
                # The static size estimate was too small: fall back to an
                # infinite representation (the MLKit would have chosen
                # infinite in the first place).
                region.kind = INFINITE
                if tr.enabled:
                    tr.emit(
                        "region_morph",
                        step=self.stats.steps,
                        region=region.ident,
                        name=region.name,
                    )
        region.words += words
        region.young_words += words
        self.stats.allocations += 1
        self.stats.allocated_words += words
        self.stats.current_words += words
        if self.stats.current_words > self.stats.peak_words:
            self.stats.peak_words = self.stats.current_words
        self.words_since_gc += words
        if tr.enabled:
            tr.emit(
                "alloc",
                step=self.stats.steps,
                region=region.ident,
                words=words,
                region_words=region.words,
                kind=region.kind,
            )
        if (
            self.flags.max_heap_words is not None
            and self.stats.current_words > self.flags.max_heap_words
        ):
            raise HeapLimitError(
                f"heap footprint {self.stats.current_words} words exceeds "
                f"max_heap_words={self.flags.max_heap_words}",
                stats=self.stats,
            )

    # -- GC policy -------------------------------------------------------------------

    def gc_decision(self) -> Optional[str]:
        """What kind of collection (``"auto"``/``"minor"``/``"major"``), if
        any, should run after the allocation that just completed.

        With a fault plan installed the plan is authoritative; otherwise
        ``gc_every_alloc`` and the heap-to-live growth policy apply.
        """
        plan = self.flags.fault_plan
        if plan is not None:
            return plan.decide_alloc(self.stats.allocations - 1)
        if self.flags.gc_every_alloc:
            return "auto"
        return "auto" if self.words_since_gc >= self.gc_threshold else None

    def dealloc_gc_decision(self) -> Optional[str]:
        """Plan-injected collection kind for the region deallocation that
        just completed (``None`` without a plan: the policy never collects
        at deallocation points)."""
        plan = self.flags.fault_plan
        if plan is None:
            return None
        return plan.decide_dealloc(self.stats.region_deallocs - 1)

    def should_collect(self) -> bool:
        return self.gc_decision() is not None

    def note_collection(self, live_words: int) -> None:
        self.live_after_gc = live_words
        self.words_since_gc = 0
        self.gc_threshold = max(
            self.flags.initial_threshold,
            int(live_words * (self.flags.heap_to_live - 1.0)),
        )

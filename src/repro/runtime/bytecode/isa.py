"""The instruction set of the bytecode backend.

One compiled program is a single flat ``tuple`` array; every function
body (and the program's main expression, body 0) occupies a contiguous
segment of it.  Instructions are Python tuples ``(opcode, *operands)``
— a register machine with one register file per activation frame.

Design rules the ISA encodes (see ``docs/bytecode.md`` for the full
reference with GC-safety obligations):

* **Steps are explicit.**  The tree walker counts one step per node
  entry, pre-order.  The compiler accumulates those counts and emits a
  single ``STEP n`` before every instruction whose effects can observe
  the step counter — an allocation (trace events, ``HeapLimitError``),
  a call (depth limit), ``RAISE``, a sanitizer probe, or a control
  transfer.  Under ``rt.checking`` the ``STEP`` handler replays the
  increments one at a time through ``Interp.check_limits`` so the
  every-step budget and every-256-steps deadline cadence are
  bit-identical to the walker.
* **Roots are explicit.**  Registers are invisible to the collector;
  the root set is ``env_stack`` + ``temps``, exactly as in the walker.
  ``PUSH``/``POPN`` mirror the walker's shadow-stack choreography at
  every instruction that can reach a GC point; the compiler elides a
  push only when no collection can occur before the matching pop
  (the same elision the closure backend applies).
* **Unwinding is explicit.**  ``BIND``/``LETEXN``/``LETREGION``/
  ``HANDLE`` push entries on a per-frame block stack; an in-flight
  ``MLRaise`` (or any fault) unwinds it — restoring shadowed bindings,
  deallocating regions *without* injecting a collection, and matching
  handler stamps — exactly like the walker's ``try``/``finally`` nest.
"""

from __future__ import annotations

__all__ = ["NAMES", "MNEMONICS", "SPECIALIZED_OPS", "opcode_name"]

# -- canonical tier ---------------------------------------------------------

STEP = 0           # (STEP, n)                    steps += n (checked one-by-one under rt.checking)
IMM = 1            # (IMM, dst, value)            load an unboxed constant
LOAD = 2           # (LOAD, dst, name)            dst := env[name]
JUMP = 3           # (JUMP, target)
JF = 4             # (JF, src, target)            jump if regs[src] is falsy
RETURN = 5         # (RETURN, src)                leave the frame with regs[src]
PUSH = 6           # (PUSH, src)                  temps.append(regs[src])  — GC root
POPN = 7           # (POPN, n)                    pop n GC roots
BIND = 8           # (BIND, name, src)            env[name] := regs[src], shadow saved on block stack
UNBIND = 9         # (UNBIND,)                    restore the innermost BIND/LETEXN
MAKE_STR = 10      # (MAKE_STR, dst, value, rho, words)   allocate an RStr
MAKE_REAL = 11     # (MAKE_REAL, dst, value, rho)         allocate an RReal
PAIR = 12          # (PAIR, dst, fst, snd, rho)           allocate an RPair (operands must be rooted)
CONS = 13          # (CONS, dst, head, tail, rho)         allocate an RCons
MKREF = 14         # (MKREF, dst, src, rho)               allocate an RRef
SELECT = 15        # (SELECT, dst, src, index)            #1/#2 of a pair (sanitizer probe)
DEREF = 16         # (DEREF, dst, src)                    !ref (sanitizer probes)
ASSIGN = 17        # (ASSIGN, dst, ref, src)              ref := value; write barrier; dst := unit
DATA = 18          # (DATA, dst, conname, src|None, rho)  allocate an RData
CASE = 19          # (CASE, src, bindreg, table)          datatype dispatch; table rows (conname|None, bindmode, target)
LETEXN = 20        # (LETEXN, key)                        bind a fresh exception stamp (block stack)
EXN = 21           # (EXN, dst, key, exname, src, rho)    allocate an RExn with the stamp env[key]
RAISE = 22         # (RAISE, src)                         raise MLRaise(regs[src])
HANDLE = 23        # (HANDLE, target, key, payreg)        push a handler block
HANDLE_POP = 24    # (HANDLE_POP,)                        pop it (body completed normally)
CLOS = 25          # (CLOS, dst, body, param, term, names, rhos, rho)         allocate an RClos
FUN = 26           # (FUN, dst, body, fname, rparams, param, term, names, rhos, rho, dropped)
RAPP = 27          # (RAPP, dst, fn, rargs, rho)          region application: specialize an RFunClos
CALL = 28          # (CALL, dst, fn, arg)                 generic application (new frame)
DCALL_BEGIN = 29   # (DCALL_BEGIN, dst, fname)            direct call: look up + count the known target
DCALL_FINISH = 30  # (DCALL_FINISH, dst, fn, arg, rargs, site)  bind regions + enter the body
LETREGION = 31     # (LETREGION, rhoinfos)                push regions; rhoinfos rows (name, rho, kind, capacity)
ENDREGION = 32     # (ENDREGION, src)                     pop + deallocate them, result rooted across dealloc GCs
PRIM = 33          # (PRIM, dst, op, argregs, rho)        primitive via Interp._apply_prim

# -- specialized tier (only reachable when rt.checking and tracing are off) --

SLOAD = 34         # (SLOAD, n, dst, name)        STEP n + LOAD fused
SIMM = 35          # (SIMM, n, dst, value)        STEP n + IMM fused
SPRIM = 36         # (SPRIM, n, dst, op, argregs, rho)    STEP n + PRIM fused
INT_VI = 37        # (INT_VI, dst, op, src, const)        int arith/compare reg×const, _apply_prim fallback
INT_VV = 38        # (INT_VV, dst, op, a, b)              int arith/compare reg×reg
CMPJF = 39         # (CMPJF, dst, op, a, b, target)       INT_VV + JF fused
DCALL_KNOWN = 40   # (DCALL_KNOWN, dst, fn, arg, rargs, site, body)  direct-threaded call

NAMES = {
    STEP: "STEP", IMM: "IMM", LOAD: "LOAD", JUMP: "JUMP", JF: "JF",
    RETURN: "RETURN", PUSH: "PUSH", POPN: "POPN", BIND: "BIND",
    UNBIND: "UNBIND", MAKE_STR: "MAKE_STR", MAKE_REAL: "MAKE_REAL",
    PAIR: "PAIR", CONS: "CONS", MKREF: "MKREF", SELECT: "SELECT",
    DEREF: "DEREF", ASSIGN: "ASSIGN", DATA: "DATA", CASE: "CASE",
    LETEXN: "LETEXN", EXN: "EXN", RAISE: "RAISE", HANDLE: "HANDLE",
    HANDLE_POP: "HANDLE_POP", CLOS: "CLOS", FUN: "FUN", RAPP: "RAPP",
    CALL: "CALL", DCALL_BEGIN: "DCALL_BEGIN", DCALL_FINISH: "DCALL_FINISH",
    LETREGION: "LETREGION", ENDREGION: "ENDREGION", PRIM: "PRIM",
    SLOAD: "SLOAD", SIMM: "SIMM", SPRIM: "SPRIM", INT_VI: "INT_VI",
    INT_VV: "INT_VV", CMPJF: "CMPJF", DCALL_KNOWN: "DCALL_KNOWN",
}

#: Inverse of :data:`NAMES` (assembler-style lookups in tests/docs).
MNEMONICS = {name: op for op, name in NAMES.items()}

#: Opcodes that only ever appear in specialized (Tier-1) segments.
SPECIALIZED_OPS = frozenset(
    {SLOAD, SIMM, SPRIM, INT_VI, INT_VV, CMPJF, DCALL_KNOWN}
)


def opcode_name(op: int) -> str:
    return NAMES.get(op, f"OP_{op}")

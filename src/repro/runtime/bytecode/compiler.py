"""Lowering region-annotated terms to the bytecode ISA.

The compiler is a straight mirror of ``Interp.ev``: every node entry
contributes one step (accumulated and flushed as ``STEP n`` before any
instruction with observable effects), every shadow-stack push/pop of
the walker is a ``PUSH``/``POPN`` (elided only where no collection can
occur before the pop — the closure backend's rule), and every binder
is a ``BIND``/``UNBIND`` pair around the scope body so unwinding can
restore shadowed names.

Each ``Lam``/``FunDef`` body becomes its own :class:`~.vm.BodyCode`
with a contiguous segment of the flat array; ``CLOS``/``FUN``
instructions reference bodies by index, so closures created at run
time carry the program-shared code object — the anchor for both the
call protocol and the specializer's hotness counters.

Strategy-dependent facts are burned in at compile time: the region
kinds and capacities of every ``letregion`` (from the multiplicity
analysis), the dropped region-parameter indices of every ``fun`` (from
the drop-regions analysis — re-deriving them on unpickle is
unnecessary because they travel inside the instruction stream), and
``ml``-mode's region-free lowering.
"""

from __future__ import annotations

from ...config import Strategy
from ...core import terms as T
from ..heap import FINITE, INFINITE
from ..interp import Prepared, _exn_key
from ..values import NIL, UNIT
from . import isa
from .vm import BodyCode, BytecodeProgram

__all__ = ["ALLOC_PRIMS", "can_gc", "compile_bytecode"]

#: Primitives whose kernels allocate (see ``Interp._apply_prim``): their
#: argument roots are observable, so temps pushes around them are never
#: elided.
ALLOC_PRIMS = frozenset({
    "radd", "rsub", "rmul", "rdiv", "rneg", "sqrt", "rsin", "rcos",
    "ratan", "rexp", "rln", "rabs", "real", "concat", "int_to_string",
    "real_to_string", "array",
})


def compile_bytecode(
    term: T.Term,
    prep: Prepared,
    strategy: Strategy,
    multiplicity=None,
    drop_regions=None,
) -> BytecodeProgram:
    """Compile ``term`` into a :class:`~.vm.BytecodeProgram` whose
    ``main`` body is a ``code(rt, env, renv)`` callable for
    :func:`repro.runtime.interp.run_term`."""
    return _Compiler(prep, strategy, multiplicity, drop_regions).compile(term)


def can_gc(t: T.Term, cache: dict) -> bool:
    """Can evaluating ``t`` reach a collection point?  Gates the
    shadow-stack elision: a root pushed across a GC-free evaluation is
    unobservable.  ``cache`` is an ``id(term) -> bool`` memo owned by
    the caller (terms are shared, analyses are per-compilation)."""
    cached = cache.get(id(t))
    if cached is not None:
        return cached
    result = _can_gc(t, cache)
    cache[id(t)] = result
    return result


def _can_gc(t: T.Term, cache: dict) -> bool:
    cls = type(t)
    if cls in (T.Var, T.IntLit, T.BoolLit, T.UnitLit, T.NilLit):
        return False
    if cls in (T.StringLit, T.RealLit, T.Lam, T.FunDef, T.RApp, T.App,
               T.Pair, T.Cons, T.MkRef, T.DataCon, T.Con):
        # Allocation sites (App through the callee), hence GC points.
        return True
    if cls is T.Letregion:
        # Deallocation points: a fault plan may inject a collection.
        return True
    if cls is T.Prim:
        if t.op in ALLOC_PRIMS:
            return True
        return any(can_gc(a, cache) for a in t.args)
    if cls is T.Let:
        return can_gc(t.rhs, cache) or can_gc(t.body, cache)
    if cls is T.If:
        return (can_gc(t.cond, cache) or can_gc(t.then, cache)
                or can_gc(t.els, cache))
    if cls is T.Select:
        return can_gc(t.pair, cache)
    if cls is T.Deref:
        return can_gc(t.ref, cache)
    if cls is T.Assign:
        return can_gc(t.ref, cache) or can_gc(t.value, cache)
    if cls is T.LetData:
        return can_gc(t.body, cache)
    if cls is T.Case:
        return can_gc(t.scrutinee, cache) or any(
            can_gc(br.body, cache) for br in t.branches
        )
    if cls is T.LetExn:
        return can_gc(t.body, cache)
    if cls is T.Raise:
        return can_gc(t.exn, cache)
    if cls is T.Handle:
        return can_gc(t.body, cache) or can_gc(t.handler, cache)
    return True  # unknown node: be conservative


class _Label:
    __slots__ = ("pos",)

    def __init__(self):
        self.pos = None


class _Compiler:
    def __init__(self, prep, strategy, multiplicity, drop_regions):
        self.prep = prep
        self.strategy = strategy
        self.ml_mode = strategy is Strategy.ML
        self.multiplicity = multiplicity
        self.drop_regions = drop_regions
        self.program = BytecodeProgram(strategy)
        self._gc_cache: dict[int, bool] = {}
        self._sites = 0

    # -- driver --------------------------------------------------------------

    def compile(self, term: T.Term) -> BytecodeProgram:
        program = self.program
        program.bodies.append(BodyCode(program, 0, "main", term))
        # Bodies are discovered while compiling (CLOS/FUN emission) and
        # appended to the worklist; each gets a contiguous segment.
        next_body = 0
        while next_body < len(program.bodies):
            body = program.bodies[next_body]
            next_body += 1
            builder = _BodyBuilder(self)
            builder.expr(body.term, 0)
            builder.flush()
            builder.emit(isa.RETURN, 0)
            body.entry = len(program.code)
            program.code.extend(builder.finalize(body.entry))
            body.end = len(program.code)
            body.nregs = builder.maxreg + 1
        program.canonical_len = len(program.code)
        program.observed = [None] * self._sites
        return program

    # -- body registration -----------------------------------------------------

    def body_for(self, t: T.Term, name: str) -> int:
        program = self.program
        body_id = len(program.bodies)
        program.bodies.append(BodyCode(program, body_id, name, t.body))
        return body_id

    def new_site(self) -> int:
        site = self._sites
        self._sites += 1
        return site

    def can_gc(self, t: T.Term) -> bool:
        return can_gc(t, self._gc_cache)


class _BodyBuilder:
    """Emits one body's instructions (label-relative, patched at the end)."""

    def __init__(self, compiler: _Compiler):
        self.c = compiler
        self.code: list = []
        self.pending = 0
        self.maxreg = 0

    # -- emission ------------------------------------------------------------

    def emit(self, *ins) -> None:
        self.code.append(ins)

    def flush(self) -> None:
        if self.pending:
            self.code.append((isa.STEP, self.pending))
            self.pending = 0

    def place(self, label: _Label) -> None:
        assert self.pending == 0, "label placed with unflushed steps"
        label.pos = len(self.code)

    def finalize(self, base: int) -> list:
        """Resolve labels to absolute program offsets."""
        def fix(operand):
            if isinstance(operand, _Label):
                return base + operand.pos
            if isinstance(operand, tuple):
                return tuple(fix(o) for o in operand)
            return operand

        out = []
        for ins in self.code:
            op = ins[0]
            if op in (isa.JUMP, isa.JF, isa.CASE, isa.HANDLE):
                ins = tuple(fix(o) for o in ins)
            out.append(ins)
        return out

    def reg(self, r: int) -> int:
        if r > self.maxreg:
            self.maxreg = r
        return r

    # -- expression lowering -----------------------------------------------------

    def expr(self, t: T.Term, dst: int) -> None:
        """Emit code leaving the value of ``t`` in ``regs[dst]``;
        registers above ``dst`` are scratch."""
        self.reg(dst)
        self.pending += 1  # the walker's per-node-entry step
        c = self.c
        cls = type(t)

        if cls is T.Var:
            self.emit(isa.LOAD, dst, t.name)
        elif cls is T.IntLit or cls is T.BoolLit:
            self.emit(isa.IMM, dst, t.value)
        elif cls is T.UnitLit:
            self.emit(isa.IMM, dst, UNIT)
        elif cls is T.NilLit:
            self.emit(isa.IMM, dst, NIL)
        elif cls is T.StringLit:
            self.flush()
            self.emit(isa.MAKE_STR, dst, t.value, t.rho,
                      1 + (len(t.value) + 7) // 8)
        elif cls is T.RealLit:
            self.flush()
            self.emit(isa.MAKE_REAL, dst, t.value, t.rho)
        elif cls is T.App:
            self._app(t, dst)
        elif cls is T.Let:
            self.expr(t.rhs, dst)
            self.emit(isa.BIND, t.name, dst)
            self.expr(t.body, dst)
            self.emit(isa.UNBIND)
        elif cls is T.If:
            l_else, l_end = _Label(), _Label()
            self.expr(t.cond, dst)
            self.flush()
            self.emit(isa.JF, dst, l_else)
            self.expr(t.then, dst)
            self.flush()
            self.emit(isa.JUMP, l_end)
            self.place(l_else)
            self.expr(t.els, dst)
            self.flush()
            self.place(l_end)
        elif cls is T.Prim:
            self._prim(t, dst)
        elif cls is T.Letregion:
            self._letregion(t, dst)
        elif cls is T.RApp:
            self.expr(t.fn, dst)
            self.flush()
            self.emit(isa.RAPP, dst, dst, tuple(t.rargs), t.rho)
        elif cls is T.Lam:
            self.flush()
            body_id = c.body_for(t, f"fn {t.param}")
            self.emit(
                isa.CLOS, dst, body_id, t.param, t.body,
                c.prep.free_vars[id(t)], c.prep.free_regions[id(t)], t.rho,
            )
        elif cls is T.FunDef:
            self.flush()
            body_id = c.body_for(t, t.fname)
            dropped = frozenset()
            if c.drop_regions is not None:
                dropped = c.drop_regions.dropped_indices_for(id(t))
            self.emit(
                isa.FUN, dst, body_id, t.fname, tuple(t.rparams), t.param,
                t.body, c.prep.free_vars[id(t)], c.prep.free_regions[id(t)],
                t.rho, dropped,
            )
        elif cls is T.Pair:
            self.expr(t.fst, dst)
            self.emit(isa.PUSH, dst)
            self.expr(t.snd, self.reg(dst + 1))
            self.emit(isa.PUSH, dst + 1)
            self.flush()
            self.emit(isa.PAIR, dst, dst, dst + 1, t.rho)
            self.emit(isa.POPN, 2)
        elif cls is T.Select:
            self.expr(t.pair, dst)
            self.flush()
            self.emit(isa.SELECT, dst, dst, t.index)
        elif cls is T.Cons:
            self.expr(t.head, dst)
            self.emit(isa.PUSH, dst)
            self.expr(t.tail, self.reg(dst + 1))
            self.emit(isa.PUSH, dst + 1)
            self.flush()
            self.emit(isa.CONS, dst, dst, dst + 1, t.rho)
            self.emit(isa.POPN, 2)
        elif cls is T.MkRef:
            self.expr(t.init, dst)
            self.emit(isa.PUSH, dst)
            self.flush()
            self.emit(isa.MKREF, dst, dst, t.rho)
            self.emit(isa.POPN, 1)
        elif cls is T.Deref:
            self.expr(t.ref, dst)
            self.flush()
            self.emit(isa.DEREF, dst, dst)
        elif cls is T.Assign:
            self.expr(t.ref, dst)
            rooted = self.c.can_gc(t.value)
            if rooted:
                self.emit(isa.PUSH, dst)
            self.expr(t.value, self.reg(dst + 1))
            if rooted:
                self.emit(isa.POPN, 1)
            self.flush()
            self.emit(isa.ASSIGN, dst, dst, dst + 1)
        elif cls is T.LetData:
            self.expr(t.body, dst)
        elif cls is T.DataCon:
            if t.arg is not None:
                self.expr(t.arg, dst)
                self.emit(isa.PUSH, dst)
                self.flush()
                self.emit(isa.DATA, dst, t.conname, dst, t.rho)
                self.emit(isa.POPN, 1)
            else:
                self.flush()
                self.emit(isa.DATA, dst, t.conname, None, t.rho)
        elif cls is T.Case:
            self._case(t, dst)
        elif cls is T.LetExn:
            self.emit(isa.LETEXN, _exn_key(t.exname))
            self.expr(t.body, dst)
            self.emit(isa.UNBIND)
        elif cls is T.Con:
            if t.arg is not None:
                self.expr(t.arg, dst)
            else:
                self.emit(isa.IMM, dst, UNIT)
            self.emit(isa.PUSH, dst)
            self.flush()
            self.emit(isa.EXN, dst, _exn_key(t.exname), t.exname, dst, t.rho)
            self.emit(isa.POPN, 1)
        elif cls is T.Raise:
            self.expr(t.exn, dst)
            self.flush()
            self.emit(isa.RAISE, dst)
        elif cls is T.Handle:
            l_handler, l_end = _Label(), _Label()
            payreg = self.reg(dst + 1)
            self.emit(isa.HANDLE, l_handler, _exn_key(t.exname), payreg)
            self.expr(t.body, dst)
            self.emit(isa.HANDLE_POP)
            self.flush()
            self.emit(isa.JUMP, l_end)
            self.place(l_handler)
            if t.binder is not None:
                self.emit(isa.BIND, t.binder, payreg)
            self.expr(t.handler, dst)
            if t.binder is not None:
                self.emit(isa.UNBIND)
            self.flush()
            self.place(l_end)
        else:
            raise TypeError(f"compile_bytecode: unknown term {cls.__name__}")

    # -- compound lowerings ------------------------------------------------------

    def _app(self, t: T.App, dst: int) -> None:
        c = self.c
        if id(t) in c.prep.direct_calls:
            rapp: T.RApp = t.fn  # type: ignore[assignment]
            self.flush()
            self.emit(isa.DCALL_BEGIN, dst, rapp.fn.name)
            self.expr(t.arg, self.reg(dst + 1))
            self.flush()
            self.emit(isa.DCALL_FINISH, dst, dst, dst + 1,
                      tuple(rapp.rargs), c.new_site())
            return
        self.expr(t.fn, dst)
        rooted = c.can_gc(t.arg)
        if rooted:
            self.emit(isa.PUSH, dst)
        self.expr(t.arg, self.reg(dst + 1))
        if rooted:
            self.emit(isa.POPN, 1)
        self.flush()
        self.emit(isa.CALL, dst, dst, dst + 1)

    def _prim(self, t: T.Prim, dst: int) -> None:
        c = self.c
        n = len(t.args)
        allocates = t.op in ALLOC_PRIMS
        pushed = 0
        for i, arg in enumerate(t.args):
            self.expr(arg, self.reg(dst + i))
            # The walker roots every evaluated argument; the root is
            # observable only if a later argument (or the primitive's
            # own allocation) can trigger a collection.
            if allocates or any(c.can_gc(a) for a in t.args[i + 1:]):
                self.emit(isa.PUSH, dst + i)
                pushed += 1
        self.flush()
        self.emit(isa.PRIM, dst, t.op, tuple(range(dst, dst + n)), t.rho)
        if pushed:
            self.emit(isa.POPN, pushed)

    def _letregion(self, t: T.Letregion, dst: int) -> None:
        c = self.c
        if c.ml_mode or not t.rhos:
            self.expr(t.body, dst)
            return
        infos = []
        for rho in t.rhos:
            kind = INFINITE
            capacity = None
            if c.multiplicity is not None and c.multiplicity.is_finite(rho):
                kind = FINITE
                capacity = c.multiplicity.finite[rho]
            infos.append((rho.display(), rho, kind, capacity))
        self.flush()
        self.emit(isa.LETREGION, tuple(infos))
        self.expr(t.body, dst)
        self.flush()
        self.emit(isa.ENDREGION, dst)

    def _case(self, t: T.Case, dst: int) -> None:
        l_end = _Label()
        bindreg = self.reg(dst + 1)
        self.expr(t.scrutinee, dst)
        self.flush()
        rows = []
        labels = []
        for br in t.branches:
            label = _Label()
            labels.append(label)
            if br.binder is None:
                bindmode = 0
            elif br.conname is not None:
                bindmode = 1  # bind the constructor payload
            else:
                bindmode = 2  # catch-all: bind the scrutinee itself
            rows.append((br.conname, bindmode, label))
        self.emit(isa.CASE, dst, bindreg, tuple(rows))
        for br, label in zip(t.branches, labels):
            self.place(label)
            if br.binder is not None:
                self.emit(isa.BIND, br.binder, bindreg)
            self.expr(br.body, dst)
            if br.binder is not None:
                self.emit(isa.UNBIND)
            self.flush()
            self.emit(isa.JUMP, l_end)
        self.place(l_end)

"""Trace-guided specialization of hot bodies.

:func:`specialize_body` runs when a :class:`~.vm.BodyCode`'s entry
counter crosses ``RuntimeFlags.specialize`` (counted only in runs where
neither limit checking nor tracing forces the canonical tier).  Two
tiers are produced, both **bit-identical** to the canonical segment in
everything observable (values, stdout, ``RunStats``, fault-plan
injection points — tracing and sanitize runs never reach them):

* **Tier 1 — super-instruction fusion** (:func:`_fuse`): the body's
  canonical segment is peephole-rewritten into a fresh segment appended
  after ``canonical_len`` and reached via ``BodyCode.fast_entry``.
  Fused pairs: ``STEP``+``LOAD``/``IMM``/``PRIM`` → ``SLOAD``/``SIMM``/
  ``SPRIM``; integer-typed ``PRIM`` → ``INT_VV``/``INT_VI`` (guarded
  fast path, ``_apply_prim`` fallback); compare+branch → ``CMPJF``.
  Direct call sites the profile observed to be monomorphic
  (``program.observed``) are rewritten into direct-threaded
  ``DCALL_KNOWN`` instructions with the callee's code object burned in
  (guarded by ``fn.code is body``, so a different callee at run time
  falls back to the generic protocol).

* **Tier 2 — generated kernels** (:class:`_KernelGen`): the body's
  *term* is compiled to Python source, ``exec``'d into a namespace
  shared by the whole program, and installed as ``BodyCode.kernel``.
  This eliminates the dispatch loop entirely — the reason the bytecode
  backend beats the closure backend (see docs/performance.md).  The
  source and its constant pool are stored on the body
  (``kernel_source``/``kernel_consts``); both pickle, so disk-cache
  hits revive the compiled function deterministically
  (:func:`revive_kernel`).

Every decision here is a function of the program's deterministic
execution profile (step counts, observed callees) — never of seeds,
hashes, or wall time — so two identical compile+run cycles produce
byte-identical instruction arrays and kernel sources (pinned by
``tests/runtime/test_bytecode_specialize.py``).
"""

from __future__ import annotations

import math
import re

from ...config import Strategy
from ...core import terms as T
from ..interp import _exn_key
from . import isa
from .compiler import ALLOC_PRIMS, can_gc
from .vm import INT_FUSABLE

__all__ = ["specialize_body", "revive_kernel", "generate_kernel_source"]

_CMP_OPS = frozenset({"lt", "le", "gt", "ge"})
_INLINE_BIN = {"add": "+", "sub": "-", "mul": "*"}
_LOCAL = re.compile(r"v\d+\Z")


def specialize_body(program, body) -> None:
    """Specialize ``body`` in place: generate (or revive) its kernel and
    its fused Tier-1 segment, then mark it specialized."""
    _ensure_namespace(program)
    if body.kernel_source is None:
        generated = generate_kernel_source(program, body)
        if generated is not None:
            body.kernel_source, body.kernel_consts = generated
    if body.kernel_source is not None and body.kernel is None:
        try:
            body.kernel = _exec_kernel(program, body)
        except SyntaxError:
            # CPython rejected the generated source (e.g. a static
            # nesting limit the generator's own bound missed) — drop
            # the kernel and stay on the fused tier.
            body.kernel_source = None
            body.kernel_consts = None
    if body.fast_entry is None:
        _fuse(program, body)
    body.specialized = True


def revive_kernel(program, body):
    """Recompile a pickled body's kernel from its stored source (cache
    hits arrive with ``kernel_source`` set and ``kernel`` dropped)."""
    _ensure_namespace(program)
    kernel = _exec_kernel(program, body)
    body.kernel = kernel
    return kernel


def _ensure_namespace(program) -> dict:
    """The shared globals of every generated kernel in ``program``.

    ``B<i>`` names each body's code object (identity guards for direct
    threading); ``K<i>`` names its kernel, rebound when body ``i``
    specializes so already-generated callers pick it up on their next
    call — module-level rebinding IS the direct-threading patch point.
    """
    ns = program._namespace
    if ns is None:
        from ...core.errors import InterpreterLimit, RuntimeFault
        from ..compile import _alloc, _dealloc_fast, _prim_kernel
        from ..heap import Region
        from ..interp import MLRaise, _MISSING
        from .vm import _call_body
        from ..values import (
            NIL,
            Nil,
            RClos,
            RCons,
            RData,
            RExn,
            RFunClos,
            RPair,
            RReal,
            RRef,
            RStr,
            UNIT,
            structural_eq,
        )

        ns = {
            "_alloc": _alloc, "_dealloc_fast": _dealloc_fast,
            "_prim_kernel": _prim_kernel,
            "MLRaise": MLRaise, "_MISSING": _MISSING,
            "_call_body": _call_body,
            "InterpreterLimit": InterpreterLimit, "RuntimeFault": RuntimeFault,
            "Region": Region,
            "UNIT": UNIT, "NIL": NIL, "Nil": Nil,
            "RClos": RClos, "RCons": RCons, "RData": RData, "RExn": RExn,
            "RFunClos": RFunClos, "RPair": RPair, "RReal": RReal,
            "RRef": RRef, "RStr": RStr, "structural_eq": structural_eq,
        }
        program._namespace = ns
    for b in program.bodies:
        ns[f"B{b.body_id}"] = b
        ns.setdefault(f"K{b.body_id}", None)
    return ns


def _exec_kernel(program, body):
    ns = _ensure_namespace(program)
    if body.kernel_consts:
        ns.update(body.kernel_consts)
    code = compile(body.kernel_source,
                   f"<bytecode kernel {body.body_id}>", "exec")
    exec(code, ns)
    kernel = ns[f"_kernel_{body.body_id}"]
    ns[f"K{body.body_id}"] = kernel
    return kernel


# ---------------------------------------------------------------------------
# Tier 1: super-instruction fusion over the canonical segment
# ---------------------------------------------------------------------------


def _fuse(program, body) -> None:
    """Append a fused copy of the body's canonical segment and point
    ``fast_entry`` at it.  A pair is never fused when a jump targets its
    second instruction (targets are label positions — always flush
    boundaries, but a flush's ``STEP`` can immediately precede one)."""
    code = program.code
    base = body.entry
    seg = code[base:body.end]
    targets = set()
    for ins in seg:
        op = ins[0]
        if op == isa.JUMP:
            targets.add(ins[1])
        elif op == isa.JF:
            targets.add(ins[2])
        elif op == isa.CASE:
            targets.update(row[2] for row in ins[3])
        elif op == isa.HANDLE:
            targets.add(ins[1])

    out: list = []
    posmap: dict[int, int] = {}
    i, n = 0, len(seg)
    while i < n:
        posmap[base + i] = len(out)
        ins = seg[i]
        op = ins[0]
        nxt = seg[i + 1] if i + 1 < n and (base + i + 1) not in targets else None
        nn = seg[i + 2] if i + 2 < n and (base + i + 2) not in targets else None

        if op == isa.STEP and nxt is not None:
            nop = nxt[0]
            if nop == isa.PRIM and nxt[4] is None and len(nxt[3]) == 2 \
                    and nxt[2] in _CMP_OPS and nn is not None \
                    and nn[0] == isa.JF and nn[1] == nxt[1]:
                # STEP; cmp; JF  ->  STEP; CMPJF
                out.append(ins)
                posmap[base + i + 1] = len(out)
                a, b = nxt[3]
                out.append((isa.CMPJF, nxt[1], nxt[2], a, b, nn[2]))
                i += 3
                continue
            if nop == isa.PRIM and nxt[4] is None and len(nxt[3]) == 2 \
                    and nxt[2] in INT_FUSABLE:
                # STEP; int prim  ->  STEP; INT_VV (guarded fast path)
                out.append(ins)
                posmap[base + i + 1] = len(out)
                a, b = nxt[3]
                out.append((isa.INT_VV, nxt[1], nxt[2], a, b))
                i += 2
                continue
            if nop == isa.PRIM:
                out.append((isa.SPRIM, ins[1], nxt[1], nxt[2], nxt[3], nxt[4]))
                i += 2
                continue
            if nop == isa.LOAD:
                out.append((isa.SLOAD, ins[1], nxt[1], nxt[2]))
                i += 2
                continue
            if nop == isa.IMM:
                out.append((isa.SIMM, ins[1], nxt[1], nxt[2]))
                i += 2
                continue
        if op == isa.IMM and isinstance(ins[2], int) and nxt is not None \
                and nxt[0] == isa.STEP and nn is not None and nn[0] == isa.PRIM \
                and nn[4] is None and nn[2] in INT_FUSABLE \
                and len(nn[3]) == 2 and nn[3][1] == ins[1] \
                and nn[3][0] != ins[1]:
            # IMM r2; STEP; int prim (r1, r2)  ->  STEP; INT_VI r1, const
            # (r2 is a dead scratch register: the expression-stack
            # discipline rewrites every register before reading it)
            out.append(nxt)
            posmap[base + i + 1] = len(out) - 1
            posmap[base + i + 2] = len(out)
            out.append((isa.INT_VI, nn[1], nn[2], nn[3][0], ins[2]))
            i += 3
            continue
        if op == isa.PRIM and ins[4] is None and len(ins[3]) == 2 \
                and ins[2] in _CMP_OPS and nxt is not None \
                and nxt[0] == isa.JF and nxt[1] == ins[1]:
            a, b = ins[3]
            out.append((isa.CMPJF, ins[1], ins[2], a, b, nxt[2]))
            i += 2
            continue
        if op == isa.DCALL_FINISH and program.observed[ins[5]] is not None:
            out.append((isa.DCALL_KNOWN, ins[1], ins[2], ins[3], ins[4],
                        ins[5], program.observed[ins[5]]))
            i += 1
            continue
        out.append(ins)
        i += 1

    spec_base = len(code)

    def fix(pc: int) -> int:
        return spec_base + posmap[pc]

    fused = []
    for ins in out:
        op = ins[0]
        if op == isa.JUMP:
            ins = (op, fix(ins[1]))
        elif op == isa.JF:
            ins = (op, ins[1], fix(ins[2]))
        elif op == isa.CMPJF:
            ins = ins[:5] + (fix(ins[5]),)
        elif op == isa.CASE:
            ins = (op, ins[1], ins[2],
                   tuple((c, m, fix(t)) for c, m, t in ins[3]))
        elif op == isa.HANDLE:
            ins = (op, fix(ins[1]), ins[2], ins[3])
        fused.append(ins)
    code.extend(fused)
    body.fast_entry = spec_base


# ---------------------------------------------------------------------------
# Tier 2: generated-Python kernels
# ---------------------------------------------------------------------------


class _Unsupported(Exception):
    """Body shape the generator does not handle.  ``capacity=True``
    marks a *size* failure (static block nesting or source depth past a
    CPython limit): the offending subtree is recoverable by spilling it
    into an auxiliary kernel function (:meth:`_KernelGen._spill`), where
    both budgets restart at zero.  Structural failures (a lambda with no
    CLOS record, an unknown term class) propagate and leave the whole
    body on the fused tier."""

    def __init__(self, reason: str, capacity: bool = False):
        super().__init__(reason)
        self.capacity = capacity


def generate_kernel_source(program, body):
    """Generate ``(source, consts)`` for ``body``, or ``None`` when the
    generator cannot handle it.  ``source`` is a module-level chunk
    (primitive-kernel prologue + ``def _kernel_<id>``); ``consts`` maps
    the ``C<id>_<n>`` names it references to picklable objects (region
    variables, term nodes, operand tuples) — both round-trip through
    the compile caches."""
    try:
        gen = _KernelGen(program, body)
        return gen.generate()
    except _Unsupported:
        return None


class _KernelGen:
    """Compiles one body's term to Python source.

    The walker-mirroring disciplines are the bytecode compiler's,
    restated for generated code: a compile-time ``pending`` step counter
    flushed (``_st.steps += n``) before every allocation, call, region
    operation, and ``raise MLRaise`` — the points where an exact step
    count is observable through carried stats or injected collections;
    shadow-stack pushes with the same :func:`can_gc` elision; explicit
    ``try``/``finally`` save-restores around every binder so an ML
    exception caught by an in-kernel handler sees the walker's
    environment.  Kernels never run under ``rt.checking`` or tracing
    (``BodyCode.__call__`` routes those to the canonical tier), but they
    DO run under fault plans, heap caps, and ``gc_every_alloc`` — the
    allocation helper and the rooting discipline carry those exactly.
    """

    MAX_DEPTH = 48

    def __init__(self, program, body):
        self.program = program
        self.body = body
        self.ml_mode = program.strategy is Strategy.ML
        self.lines: list[str] = []
        self.prologue: list[str] = []
        self.aux_defs: list[str] = []
        self.nspill = 0
        self.consts: dict[str, object] = {}
        self._const_ids: dict[int, str] = {}
        self._pk: dict[tuple[str, int], str] = {}
        self.nloc = 0
        self.naux = 0
        self.pending = 0
        self.ind = 1
        self.depth = 0
        self.nest = 0  # statically nested try/for blocks (CPython caps at 20)
        self._gc_cache: dict[int, bool] = {}
        # Compile-time facts burned into this body's canonical segment:
        # closure capture lists (keyed by the lambda's body term, which
        # the instruction shares with the term tree), region
        # multiplicities, and direct-call site ids in emission order.
        self.clos_by_term: dict[int, tuple] = {}
        self.fun_by_term: dict[int, tuple] = {}
        self.region_rows: dict = {}
        self.sites: list[int] = []
        for ins in program.code[body.entry:body.end]:
            op = ins[0]
            if op == isa.CLOS:
                self.clos_by_term[id(ins[4])] = ins
            elif op == isa.FUN:
                self.fun_by_term[id(ins[6])] = ins
            elif op == isa.LETREGION:
                for row in ins[1]:
                    self.region_rows[row[1]] = row
            elif op == isa.DCALL_FINISH:
                self.sites.append(ins[5])
        self._next_site = 0

    # -- infrastructure ------------------------------------------------------

    def generate(self):
        result = self.gen(self.body.term)
        self.flush()
        self.emit(f"return {result}")
        bid = self.body.body_id
        header = [
            f"def _kernel_{bid}(rt, env, renv):",
            "    _st = rt.stats",
            "    _temps = rt.temps",
        ]
        source = "\n".join(
            self.prologue + self.aux_defs + header + self.lines
        ) + "\n"
        return source, dict(self.consts)

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.ind + line)

    def flush(self) -> None:
        if self.pending:
            self.emit(f"_st.steps += {self.pending}")
            self.pending = 0

    def local(self) -> str:
        self.nloc += 1
        return f"v{self.nloc}"

    def aux(self, prefix: str) -> str:
        self.naux += 1
        return f"_{prefix}{self.naux}"

    # CPython rejects a function with more than 20 statically nested
    # blocks (``try``/``for``/``while``/``with`` — ``if`` does not
    # count, and neither does the indentation the generator adds for
    # it).  ``block()`` tracks exactly those statements, so the bound
    # can sit close to the real limit; the two-block margin covers the
    # handler-cleanup frame CPython pushes inside an ``except`` suite,
    # which ``_gen_handle`` accounts as a single block.
    MAX_BLOCKS = 18

    def block(self) -> None:
        """Account for one statically nested block about to open; a
        subtree that would exceed CPython's limit spills into an
        auxiliary kernel function instead (see :meth:`_spill`)."""
        self.nest += 1
        if self.nest > self.MAX_BLOCKS:
            raise _Unsupported("too many statically nested blocks",
                               capacity=True)

    def unblock(self) -> None:
        self.nest -= 1

    def force(self, expr: str) -> str:
        """Materialize ``expr`` into a local (no-op when it already is
        one) so it can be rooted, reused, or ordered before later
        statements."""
        if _LOCAL.fullmatch(expr):
            return expr
        v = self.local()
        self.emit(f"{v} = {expr}")
        return v

    def const(self, obj) -> str:
        name = self._const_ids.get(id(obj))
        if name is None:
            name = f"C{self.body.body_id}_{len(self.consts)}"
            self._const_ids[id(obj)] = name
            self.consts[name] = obj
        return name

    def pk(self, op: str, rho) -> str:
        """Prologue-bound primitive kernel for ``(op, rho)`` (see
        ``repro.runtime.compile._prim_kernel``)."""
        key = (op, id(rho))
        name = self._pk.get(key)
        if name is None:
            name = f"_pk{self.body.body_id}_{len(self._pk)}"
            self._pk[key] = name
            rho_ref = "None" if rho is None else self.const(rho)
            self.prologue.append(
                f"{name} = _prim_kernel({op!r}, {rho_ref})[1]"
            )
        return name

    def can_gc(self, t) -> bool:
        return can_gc(t, self._gc_cache)

    def bound(self, key: str, value_expr: str):
        """Emit ``env[key] = value`` with shadow save; returns a closer
        that ends the ``try`` with the restoring ``finally``."""
        self.block()
        sv = self.aux("s")
        self.emit(f"{sv} = env.get({key!r}, _MISSING)")
        self.emit(f"env[{key!r}] = {value_expr}")
        self.emit("try:")
        self.ind += 1

        def close():
            self.ind -= 1
            self.emit("finally:")
            self.emit(f"    if {sv} is _MISSING:")
            self.emit(f"        del env[{key!r}]")
            self.emit("    else:")
            self.emit(f"        env[{key!r}] = {sv}")
            self.unblock()

        return close

    def enter_frame(self, call_env: str):
        """The ``Interp._enter`` prologue/epilogue around a call."""
        self.block()
        self.emit("rt.depth += 1")
        self.emit("if rt.depth > rt.flags.max_depth:")
        self.emit("    rt.depth -= 1")
        self.emit("    raise InterpreterLimit(")
        self.emit('        f"call depth exceeded ({rt.flags.max_depth})",')
        self.emit("        stats=_st)")
        self.emit(f"rt.env_stack.append({call_env})")
        self.emit("try:")
        self.ind += 1

        def close():
            self.ind -= 1
            self.emit("finally:")
            self.emit("    rt.env_stack.pop()")
            self.emit("    rt.depth -= 1")
            self.unblock()

        return close

    # -- expression generation -------------------------------------------------

    def gen(self, t) -> str:
        """Emit statements evaluating ``t``; returns a Python expression
        (an already-assigned local, or a deferrable pure atom).

        Capacity failures are transactional: when generating ``t`` would
        blow a CPython source limit, everything the failed attempt
        emitted or consumed (lines, indentation, nesting, the pending
        step counter, direct-call site cursor) is rolled back and the
        subtree is regenerated into an auxiliary kernel function where
        both budgets restart at zero (:meth:`_spill`)."""
        mark = (len(self.lines), self.ind, self.nest, self.pending,
                self._next_site)
        self.depth += 1
        try:
            if self.depth > self.MAX_DEPTH:
                raise _Unsupported("nesting too deep for generated source",
                                   capacity=True)
            return self._gen(t)
        except _Unsupported as exc:
            if not exc.capacity:
                raise
            del self.lines[mark[0]:]
            (self.ind, self.nest, self.pending,
             self._next_site) = mark[1], mark[2], mark[3], mark[4]
            return self._spill(t)
        finally:
            self.depth -= 1

    def _spill(self, t) -> str:
        """Generate ``t`` as its own module-level kernel function and
        emit a call to it at the current point.

        Spilling is how bodies deeper than CPython's static limits still
        get full Tier-2 kernels: the auxiliary function shares the
        calling convention (``rt, env, renv`` — the same mutable
        environment dicts, shadow stack, and stats), so moving a subtree
        across the boundary is observationally free.  The outer pending
        steps are flushed before the call so every observation point
        inside the spilled subtree sees the exact canonical count; the
        subtree's own entry step is counted inside.  A spilled subtree
        that is itself too deep spills again — the recursion terminates
        because each auxiliary function restarts at zero and every term
        node opens a bounded number of blocks, so the next failure is
        always at a strictly smaller subtree."""
        self.flush()
        self.nspill += 1
        name = f"_kaux_{self.body.body_id}_{self.nspill}"
        outer_lines = self.lines
        saved = (self.ind, self.nest, self.depth)
        self.lines = []
        self.ind, self.nest, self.depth = 1, 0, 0
        result = self.gen(t)
        self.flush()
        self.emit(f"return {result}")
        aux_body = self.lines
        self.lines = outer_lines
        self.ind, self.nest, self.depth = saved
        self.aux_defs.extend([
            f"def {name}(rt, env, renv):",
            "    _st = rt.stats",
            "    _temps = rt.temps",
            *aux_body,
        ])
        out = self.local()
        self.emit(f"{out} = {name}(rt, env, renv)")
        return out

    def _gen(self, t) -> str:
        self.pending += 1  # the walker's per-node-entry step
        cls = type(t)

        if cls is T.Var:
            return f"env[{t.name!r}]"
        if cls is T.IntLit or cls is T.BoolLit:
            return repr(t.value)
        if cls is T.UnitLit:
            return "UNIT"
        if cls is T.NilLit:
            return "NIL"
        if cls is T.StringLit:
            self.flush()
            words = 1 + (len(t.value) + 7) // 8
            return self.force(
                f"RStr({t.value!r}, "
                f"_alloc(rt, {self.const(t.rho)}, renv, {words}))"
            )
        if cls is T.RealLit:
            self.flush()
            lit = (repr(t.value) if math.isfinite(t.value)
                   else self.const(t.value))
            return self.force(
                f"RReal({lit}, _alloc(rt, {self.const(t.rho)}, renv, 1))"
            )
        if cls is T.App:
            return self._gen_app(t)
        if cls is T.Let:
            rhs = self.gen(t.rhs)
            out = self.local()
            close = self.bound(t.name, rhs)
            self.emit(f"{out} = {self.gen(t.body)}")
            close()
            return out
        if cls is T.If:
            cond = self.gen(t.cond)
            self.flush()
            out = self.local()
            self.emit(f"if {cond}:")
            self.ind += 1
            self.emit(f"{out} = {self.gen(t.then)}")
            self.flush()
            self.ind -= 1
            self.emit("else:")
            self.ind += 1
            self.emit(f"{out} = {self.gen(t.els)}")
            self.flush()
            self.ind -= 1
            return out
        if cls is T.Prim:
            return self._gen_prim(t)
        if cls is T.Letregion:
            return self._gen_letregion(t)
        if cls is T.RApp:
            return self._gen_rapp(t)
        if cls is T.Lam:
            ins = self.clos_by_term.get(id(t.body))
            if ins is None:
                raise _Unsupported("lambda without a CLOS record")
            return self._gen_close(
                ins[2], ins[5], ins[6], ins[7],
                lambda venv, crenv, region:
                f"RClos({t.param!r}, {self.const(t.body)}, {venv}, {crenv}, "
                f"{region}, code=B{ins[2]})",
            )
        if cls is T.FunDef:
            ins = self.fun_by_term.get(id(t.body))
            if ins is None:
                raise _Unsupported("fun without a FUN record")
            return self._gen_close(
                ins[2], ins[7], ins[8], ins[9],
                lambda venv, crenv, region:
                f"RFunClos({t.fname!r}, {self.const(ins[4])}, {t.param!r}, "
                f"{self.const(t.body)}, {venv}, {crenv}, {region}, "
                f"{self.const(ins[10])}, code=B{ins[2]})",
            )
        if cls is T.Pair or cls is T.Cons:
            a = self.force(self.gen(t.fst if cls is T.Pair else t.head))
            self.emit(f"_temps.append({a})")
            b = self.force(self.gen(t.snd if cls is T.Pair else t.tail))
            self.emit(f"_temps.append({b})")
            self.flush()
            ctor = "RPair" if cls is T.Pair else "RCons"
            out = self.force(
                f"{ctor}({a}, {b}, _alloc(rt, {self.const(t.rho)}, renv, 2))"
            )
            self.emit("del _temps[-2:]")
            return out
        if cls is T.Select:
            p = self.force(self.gen(t.pair))
            self.emit(f"if not isinstance({p}, RPair):")
            self.emit("    raise RuntimeFault('#i of a non-pair value')")
            return f"{p}.{'fst' if t.index == 1 else 'snd'}"
        if cls is T.MkRef:
            a = self.force(self.gen(t.init))
            self.emit(f"_temps.append({a})")
            self.flush()
            out = self.force(
                f"RRef({a}, _alloc(rt, {self.const(t.rho)}, renv, 1))"
            )
            self.emit("_temps.pop()")
            return out
        if cls is T.Deref:
            # No type check, like the walker: a non-ref propagates its
            # AttributeError.  Forced, not deferred — a sibling Assign
            # must not be reordered past this read.
            return self.force(f"{self.force(self.gen(t.ref))}.contents")
        if cls is T.Assign:
            ref = self.force(self.gen(t.ref))
            rooted = self.can_gc(t.value)
            if rooted:
                self.emit(f"_temps.append({ref})")
            value = self.gen(t.value)
            if rooted:
                self.emit("_temps.pop()")
            self.emit(f"{ref}.contents = {value}")
            self.emit(f"rt.collector.note_write({ref})")
            return "UNIT"
        if cls is T.LetData:
            return self._gen(t.body)  # the node itself still costs a step
        if cls is T.DataCon:
            if t.arg is not None:
                a = self.force(self.gen(t.arg))
                self.emit(f"_temps.append({a})")
                self.flush()
                out = self.force(
                    f"RData({t.conname!r}, {a}, "
                    f"_alloc(rt, {self.const(t.rho)}, renv, 2))"
                )
                self.emit("_temps.pop()")
                return out
            self.flush()
            return self.force(
                f"RData({t.conname!r}, None, "
                f"_alloc(rt, {self.const(t.rho)}, renv, 2))"
            )
        if cls is T.Case:
            return self._gen_case(t)
        if cls is T.LetExn:
            key = _exn_key(t.exname)
            out = self.local()
            close = self.bound(key, "next(rt._exn_stamps)")
            self.emit(f"{out} = {self.gen(t.body)}")
            close()
            return out
        if cls is T.Con:
            key = _exn_key(t.exname)
            a = self.force(self.gen(t.arg)) if t.arg is not None else "UNIT"
            self.emit(f"_temps.append({a})")
            self.flush()
            region = self.force(
                f"_alloc(rt, {self.const(t.rho)}, renv, 2)"
            )
            self.emit("_temps.pop()")
            return self.force(
                f"RExn(env[{key!r}], {t.exname!r}, {a}, {region})"
            )
        if cls is T.Raise:
            e = self.gen(t.exn)
            self.flush()
            self.emit(f"raise MLRaise({e})")
            return "None"  # unreachable; keeps callers uniform
        if cls is T.Handle:
            return self._gen_handle(t)
        raise _Unsupported(f"no kernel lowering for {cls.__name__}")

    # -- compound constructs -----------------------------------------------------

    def _gen_app(self, t) -> str:
        if type(t.fn) is T.RApp and type(t.fn.fn) is T.Var:
            return self._gen_direct_call(t)
        fn = self.gen(t.fn)
        rooted = self.can_gc(t.arg)
        if rooted:
            fn = self.force(fn)
            self.emit(f"_temps.append({fn})")
        arg = self.force(self.gen(t.arg))
        if rooted:
            self.emit("_temps.pop()")
        fn = self.force(fn)
        self.flush()
        env = self.aux("ce")
        self.emit(f"_t = type({fn})")
        self.emit("if _t is RClos:")
        self.emit(f"    {env} = dict({fn}.venv)")
        self.emit(f"    {env}[{fn}.param] = {arg}")
        self.emit("elif _t is RFunClos:")
        self.emit(f"    {env} = dict({fn}.venv)")
        self.emit(f"    {env}[{fn}.fname] = {fn}")
        self.emit(f"    {env}[{fn}.param] = {arg}")
        self.emit("else:")
        self.emit("    raise RuntimeFault('application of a non-function value')")
        out = self.local()
        close = self.enter_frame(env)
        self.emit(f"_c = {fn}.code")
        self.emit("if _c is None:")
        self.emit(f"    {out} = rt.ev({fn}.body, {env}, dict({fn}.renv))")
        self.emit("else:")
        self.emit(f"    {out} = _call_body(_c, rt, {env}, dict({fn}.renv))")
        close()
        return out

    def _gen_direct_call(self, t) -> str:
        rapp = t.fn
        if self._next_site >= len(self.sites):
            raise _Unsupported("direct-call site records out of sync")
        site = self.sites[self._next_site]
        self._next_site += 1
        fn = self.local()
        self.emit(f"{fn} = env[{rapp.fn.name!r}]")
        self.emit(f"if type({fn}) is not RFunClos:")
        self.emit("    raise RuntimeFault('region application of a non-fun value')")
        self.emit("_st.direct_calls += 1")
        arg = self.force(self.gen(t.arg))
        self.flush()
        # Region binding: the walker roots `arg` across it, but binding
        # cannot allocate — the push is elided (the closure backend's
        # proven elision).
        renv2 = self.aux("re")
        self._gen_bind_regions(fn, tuple(rapp.rargs), renv2)
        env = self.aux("ce")
        self.emit(f"{env} = dict({fn}.venv)")
        self.emit(f"{env}[{fn}.fname] = {fn}")
        self.emit(f"{env}[{fn}.param] = {arg}")
        out = self.local()
        close = self.enter_frame(env)
        observed = self.program.observed[site]
        self.emit(f"_c = {fn}.code")
        if observed is not None:
            bid = observed.body_id
            self.emit(f"if _c is B{bid} and K{bid} is not None:")
            self.emit(f"    {out} = K{bid}(rt, {env}, {renv2})")
            self.emit("elif _c is None:")
        else:
            self.emit("if _c is None:")
        self.emit(f"    {out} = rt.ev({fn}.body, {env}, {renv2})")
        self.emit("else:")
        self.emit(f"    {out} = _call_body(_c, rt, {env}, {renv2})")
        close()
        return out

    def _gen_bind_regions(self, fn: str, rargs: tuple, renv2: str) -> None:
        """``Interp._bind_regions`` over runtime ``rparams``/``dropped``
        with the actuals burned as a constant tuple."""
        actuals = self.const(rargs)
        self.block()
        self.emit(f"{renv2} = dict({fn}.renv)")
        self.emit("_i = 0")
        self.emit(f"_d = {fn}.dropped")
        self.emit(f"for _fp in {fn}.rparams:")
        self.emit("    if _i in _d:")
        self.emit("        _st.dropped_region_passes += 1")
        self.emit("    else:")
        self.emit(f"        {renv2}[_fp] = rt.resolve({actuals}[_i], renv)")
        self.emit("    _i += 1")
        self.unblock()

    def _gen_rapp(self, t) -> str:
        fn = self.force(self.gen(t.fn))
        self.flush()
        self.emit(f"if not isinstance({fn}, RFunClos):")
        self.emit("    raise RuntimeFault('region application of a non-fun value')")
        self.emit("_st.region_apps += 1")
        self.emit(f"_temps.append({fn})")
        self.block()
        self.emit("try:")
        self.ind += 1
        renv2 = self.aux("re")
        self._gen_bind_regions(fn, tuple(t.rargs), renv2)
        venv = self.aux("ve")
        self.emit(f"{venv} = dict({fn}.venv)")
        self.emit(f"{venv}[{fn}.fname] = {fn}")
        region = self.aux("rg")
        self.emit(
            f"{region} = _alloc(rt, {self.const(t.rho)}, renv, "
            f"1 + len({venv}) + len({renv2}))"
        )
        self.ind -= 1
        self.emit("finally:")
        self.emit("    _temps.pop()")
        self.unblock()
        return self.force(
            f"RClos({fn}.param, {fn}.body, {venv}, {renv2}, {region}, "
            f"code={fn}.code)"
        )

    def _gen_close(self, body_id, names, rhos, rho, build) -> str:
        self.flush()
        venv = self.aux("ve")
        pairs = ", ".join(f"{n!r}: env[{n!r}]" for n in names)
        self.emit(f"{venv} = {{{pairs}}}")
        crenv = self.aux("cr")
        if self.ml_mode:
            self.emit(f"{crenv} = {{}}")
            words = 1 + len(names)
        else:
            rpairs = ", ".join(
                f"{self.const(r)}: rt.resolve({self.const(r)}, renv)"
                for r in rhos
            )
            self.emit(f"{crenv} = {{{rpairs}}}")
            words = 1 + len(names) + len(rhos)
        region = self.aux("rg")
        self.emit(
            f"{region} = _alloc(rt, {self.const(rho)}, renv, {words})"
        )
        return self.force(build(venv, crenv, region))

    def _gen_prim(self, t) -> str:
        op = t.op
        allocates = op in ALLOC_PRIMS
        args = []
        pushed = 0
        n = len(t.args)
        for i, a in enumerate(t.args):
            expr = self.gen(a)
            if allocates or any(self.can_gc(x) for x in t.args[i + 1:]):
                expr = self.force(expr)
                self.emit(f"_temps.append({expr})")
                pushed += 1
            args.append(expr)
        result = self._apply_prim_expr(t, args)
        if pushed:
            result = self.force(result)
            self.emit(f"del _temps[-{pushed}:]")
        return result

    def _apply_prim_expr(self, t, args) -> str:
        op = t.op
        if op in _INLINE_BIN:
            a, b = args
            return f"({a} {_INLINE_BIN[op]} {b})"
        if op == "neg":
            return f"(-{args[0]})"
        if op == "not":
            return f"(not {args[0]})"
        if op == "null":
            return self.force(f"isinstance({args[0]}, Nil)")
        if op == "eq":
            return self.force(f"structural_eq({args[0]}, {args[1]})")
        if op == "ne":
            return self.force(f"(not structural_eq({args[0]}, {args[1]}))")
        if op in _CMP_OPS:
            a = self.force(args[0])
            b = self.force(args[1])
            pk = self.pk(op, None)
            py = {"lt": "<", "le": "<=", "gt": ">", "ge": ">="}[op]
            return self.force(
                f"({a} {py} {b}) if type({a}) is int and type({b}) is int "
                f"else {pk}(rt, {a}, {b}, renv)"
            )
        arity, _kernel, _allocs = _prim_kernel_meta(op, t.rho)
        if arity is None:
            # No specialized kernel: the walker's _apply_prim, verbatim.
            self.flush()
            rho_ref = "None" if t.rho is None else self.const(t.rho)
            return self.force(
                f"rt._apply_prim({op!r}, [{', '.join(args)}], {rho_ref}, renv)"
            )
        if arity != len(args):
            raise _Unsupported(f"primitive {op} arity mismatch")
        if _allocs:
            self.flush()
        pk = self.pk(op, t.rho)
        return self.force(f"{pk}(rt, {', '.join(args)}, renv)")

    def _gen_letregion(self, t) -> str:
        if self.ml_mode or not t.rhos:
            return self._gen(t.body)
        self.flush()
        self.emit("_st.letregions += 1")
        # The region lifecycle is inlined from Heap.new_region /
        # Heap.dealloc_region, exactly as the closure backend's
        # c_letregion inlines it — it is the hottest non-body work of a
        # letregion.  Kernels never run under tracing (BodyCode.__call__
        # routes traced runs to the canonical tier), so the trace-emit
        # branches drop unconditionally.
        hp = self.aux("hp")
        sk = self.aux("sk")
        self.emit(f"{hp} = rt.heap")
        self.emit(f"{sk} = {hp}.region_stack")
        created = []
        for rho in t.rhos:
            row = self.region_rows.get(rho)
            if row is None:
                raise _Unsupported("letregion without a LETREGION record")
            name, _rho, kind, capacity = row
            rg = self.aux("rg")
            sv = self.aux("s")
            self.emit(
                f"{rg} = Region(next({hp}._ids), {name!r}, {kind!r}, "
                f"{capacity!r})"
            )
            self.emit(f"{sk}.append({rg})")
            counter = ("finite_regions_created" if kind == "finite"
                       else "infinite_regions_created")
            self.emit(f"_st.{counter} += 1")
            self.emit(f"if len({sk}) > _st.max_region_stack:")
            self.emit(f"    _st.max_region_stack = len({sk})")
            rho_ref = self.const(rho)
            self.emit(f"{sv} = renv.get({rho_ref}, _MISSING)")
            self.emit(f"renv[{rho_ref}] = {rg}")
            created.append((rho_ref, rg, sv))
        out = self.local()
        self.block()
        self.emit("try:")
        self.ind += 1
        self.emit(f"{out} = {self.gen(t.body)}")
        self.flush()
        self.ind -= 1
        self.emit("except BaseException:")
        self.ind += 1
        # Unwinding: pop the regions but never inject a collection —
        # the in-flight exception value is not on the shadow stack.
        for rho_ref, rg, sv in reversed(created):
            self._dealloc_region(sk, rg)
            self._restore_renv(rho_ref, sv)
        self.emit("raise")
        self.ind -= 1
        self.unblock()
        self.emit(f"_temps.append({out})")
        self.block()
        self.emit("try:")
        self.ind += 1
        for rho_ref, rg, sv in reversed(created):
            self._dealloc_region(sk, rg)
            self._restore_renv(rho_ref, sv)
            # Inline rt.maybe_gc_at_dealloc(): without a fault plan the
            # policy never collects at deallocation points.
            self.emit("if rt.use_gc:")
            self.emit("    _p = rt.flags.fault_plan")
            self.emit("    if _p is not None:")
            self.emit("        _k = _p.decide_dealloc(_st.region_deallocs - 1)")
            self.emit("        if _k is not None:")
            self.emit("            _st.gc_injected += 1")
            self.emit("            rt.collector.collect_kind(_k, rt.roots())")
        self.ind -= 1
        self.emit("finally:")
        self.emit("    _temps.pop()")
        self.unblock()
        return out

    def _dealloc_region(self, sk: str, rg: str) -> None:
        """Heap.dealloc_region without the trace branch (see
        :meth:`_gen_letregion`): delegates to the shared
        ``_dealloc_fast`` helper so the page-list release and
        young-word reset can never drift from the closure backend."""
        self.emit(f"_dealloc_fast(rt.heap, _st, {rg})")

    def _restore_renv(self, rho_ref: str, sv: str) -> None:
        self.emit(f"if {sv} is _MISSING:")
        self.emit(f"    del renv[{rho_ref}]")
        self.emit("else:")
        self.emit(f"    renv[{rho_ref}] = {sv}")

    def _gen_case(self, t) -> str:
        scrut = self.force(self.gen(t.scrutinee))
        self.flush()
        out = self.local()
        branches = t.branches
        if branches and branches[0].conname is not None:
            # The walker's isinstance check fires at the first
            # constructor branch; hoisted once since it is invariant.
            self.emit(f"if not isinstance({scrut}, RData):")
            self.emit("    raise RuntimeFault('case on a non-datatype value')")

        def gen_branch(br, bound_expr):
            if br.binder is not None:
                close = self.bound(br.binder, bound_expr)
                self.emit(f"{out} = {self.gen(br.body)}")
                close()
            else:
                self.emit(f"{out} = {self.gen(br.body)}")
            self.flush()

        first = True
        closed = False
        for br in branches:
            if br.conname is None:
                if first:
                    gen_branch(br, scrut)
                else:
                    self.emit("else:")
                    self.ind += 1
                    gen_branch(br, scrut)
                    self.ind -= 1
                closed = True
                break  # later branches are unreachable, as in the walker
            kw = "if" if first else "elif"
            self.emit(f"{kw} {scrut}.conname == {br.conname!r}:")
            self.ind += 1
            gen_branch(br, f"{scrut}.payload")
            self.ind -= 1
            first = False
        if not closed:
            self.emit("else:")
            self.emit("    raise RuntimeFault(")
            self.emit("        f\"Match: no case branch for constructor "
                      f"{{{scrut}.conname}}\")")
        return out

    def _gen_handle(self, t) -> str:
        key = _exn_key(t.exname)
        out = self.local()
        tl = self.aux("tl")
        exc = self.aux("e")
        self.emit(f"{tl} = len(_temps)")
        self.block()
        self.emit("try:")
        self.ind += 1
        self.emit(f"{out} = {self.gen(t.body)}")
        self.flush()
        self.ind -= 1
        self.emit(f"except MLRaise as {exc}:")
        self.ind += 1
        self.emit(f"if {exc}.value.stamp != env[{key!r}]:")
        self.emit("    raise")
        # The walker's per-push finallys have already drained temps by
        # the time its handler runs; generated pushes have no finallys,
        # so truncate to the recorded level here.
        self.emit(f"del _temps[{tl}:]")
        if t.binder is not None:
            close = self.bound(t.binder, f"{exc}.value.payload")
            self.emit(f"{out} = {self.gen(t.handler)}")
            close()
        else:
            self.emit(f"{out} = {self.gen(t.handler)}")
        self.flush()
        self.ind -= 1
        self.unblock()
        return out


def _prim_kernel_meta(op: str, rho):
    from ..compile import _prim_kernel

    return _prim_kernel(op, rho)

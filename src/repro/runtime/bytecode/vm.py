"""The bytecode virtual machine: one dispatch loop, one block stack.

``_execute`` interprets a body's segment of the flat instruction array
against a per-frame register file.  Calls recurse into Python (a new
``_execute`` frame per MiniML activation), which preserves the
interpreter's ``max_depth``/``RecursionError`` semantics; an in-flight
``MLRaise`` unwinds the frame's block stack — restoring shadowed
bindings, deallocating ``letregion`` regions *without* injecting a
collection, and matching handler stamps — exactly like the tree
walker's ``try``/``finally`` nest.

Bit-identity contract (pinned by the golden matrix in
``tests/runtime/test_bytecode_backend.py``): values, stdout, the full
``RunStats``, trace events, sanitizer faults, and fault-plan injection
points all match the tree walker.  The walker's shadow-stack and
step-accounting disciplines are encoded in the instruction stream (see
:mod:`.isa`); the handlers below reuse the interpreter's own helpers
(``Interp._apply_prim``, ``Interp.resolve``, the inlined allocation
fast path of :func:`repro.runtime.compile._alloc`) so the observable
behaviour is the walker's by construction.
"""

from __future__ import annotations

from ...core.errors import InterpreterLimit, RuntimeFault
from ..compile import _alloc
from ..interp import MLRaise, _MISSING
from ..values import (
    RClos,
    RCons,
    RData,
    RExn,
    RFunClos,
    RPair,
    RReal,
    RRef,
    RStr,
    UNIT,
)

__all__ = ["BodyCode", "BytecodeProgram"]

_BLK_BIND = 0
_BLK_REGION = 1
_BLK_HANDLER = 2


class BodyCode:
    """The callable code object of one compiled body (main is body 0).

    Implements the backend code protocol ``code(rt, env, renv)`` shared
    with the closure backend, so ``RClos``/``RFunClos`` values carry a
    ``BodyCode`` in their ``code`` slot and calls dispatch through it.

    Also the unit of trace-guided specialization: entries are counted
    (only in runs where neither limit checking nor tracing forces the
    canonical tier) and once the count crosses ``rt.flags.specialize``
    the body is rewritten — super-instruction fusion into a fresh
    segment (``fast_entry``) and, where the kernel generator supports
    the body, a generated-Python kernel (``kernel``).  Decisions are
    functions of the deterministic execution profile alone, never of
    seeds or wall time, so cached artifacts stay reproducible.
    """

    __slots__ = (
        "program", "body_id", "name", "entry", "end", "nregs", "term",
        "counter", "specialized", "fast_entry", "kernel", "kernel_source",
        "kernel_consts",
    )

    def __init__(self, program, body_id, name, term):
        self.program = program
        self.body_id = body_id
        self.name = name          # "main" or the fn/param label (disasm only)
        self.term = term          # the body's term (kernel generation)
        self.entry = 0
        self.end = 0
        self.nregs = 1
        self.counter = 0
        self.specialized = False
        self.fast_entry = None
        self.kernel = None
        self.kernel_source = None
        self.kernel_consts = None  # name -> region var / term, for revival

    def __call__(self, rt, env, renv):
        return _call_body(self, rt, env, renv)

    # Compiled kernels are exec-artifacts; only their source survives
    # pickling (revived deterministically on first post-unpickle call).
    def __getstate__(self):
        return {
            "program": self.program, "body_id": self.body_id,
            "name": self.name, "term": self.term, "entry": self.entry,
            "end": self.end, "nregs": self.nregs, "counter": self.counter,
            "specialized": self.specialized, "fast_entry": self.fast_entry,
            "kernel_source": self.kernel_source,
            "kernel_consts": self.kernel_consts,
        }

    def __setstate__(self, state):
        for slot in self.__slots__:
            setattr(self, slot, state.get(slot))

    def __repr__(self):  # pragma: no cover - debugging aid
        tier = "kernel" if self.kernel_source else (
            "fused" if self.fast_entry is not None else "canonical")
        return (f"<BodyCode {self.body_id} {self.name!r} @{self.entry} "
                f"nregs={self.nregs} {tier}>")


class BytecodeProgram:
    """One compiled program: a flat instruction array plus its bodies
    and specialization state.

    ``code[:canonical_len]`` is the canonical (Tier-0) segment the
    compiler emitted — the only code reachable under limit checking or
    tracing.  Specialized segments are appended after it and reached
    through ``BodyCode.fast_entry``.  ``observed`` records, per direct
    call site, the last callee ``BodyCode`` — the trace feedback the
    specializer uses to rewrite monomorphic sites into direct-threaded
    ``DCALL_KNOWN`` instructions.

    Everything pickles (instruction operands are ints, strings, region
    variables, terms, and ``BodyCode`` references) except compiled
    kernels, which are revived from their stored source.
    """

    def __init__(self, strategy):
        self.strategy = strategy
        self.code: list = []
        self.bodies: list[BodyCode] = []
        self.canonical_len = 0
        self.observed: list = []
        self._namespace = None   # shared globals of generated kernels

    @property
    def main(self) -> BodyCode:
        return self.bodies[0]

    def spec_table(self) -> dict:
        """The specialization table, in a stable, comparable form (the
        determinism tests and the disk-cache round-trip test diff this)."""
        return {
            "schema": "repro-bytecode-spec/v1",
            "canonical_len": self.canonical_len,
            "code_len": len(self.code),
            "bodies": [
                {
                    "body": b.body_id,
                    "name": b.name,
                    "counter": b.counter,
                    "specialized": b.specialized,
                    "fast_entry": b.fast_entry,
                    "kernel_source": b.kernel_source,
                }
                for b in self.bodies
            ],
            "observed": [
                None if b is None else b.body_id for b in self.observed
            ],
        }

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_namespace"] = None
        return state


def _call_body(code, rt, env, renv):
    """Invoke a body's code object as a *plain function* call.

    Every VM-internal call site routes through this instead of
    ``code(rt, env, renv)``: calling a ``BodyCode`` *instance* goes
    through CPython's ``slot_tp_call``, which consumes C stack per hop,
    and :func:`repro.runtime.interp.run_term` raises the Python
    recursion limit far past what the C stack can absorb — so deep
    canonical-tier MiniML recursion would overflow the C stack (and
    crash the process) before either the ``max_depth`` counter or
    ``RecursionError`` fired.  Plain-function recursion stays on
    CPython's heap-allocated frame stack, so the same recursion depth
    that the tree walker and closure backend survive is safe here too.
    """
    if type(code) is not BodyCode:
        return code(rt, env, renv)
    if rt.checking or rt.heap.trace.enabled:
        return _execute(code.program, code.entry, code.nregs, rt, env, renv)
    kernel = code.kernel
    if kernel is not None:
        return kernel(rt, env, renv)
    if code.specialized:
        if code.kernel_source is not None:
            # Unpickled from a cache: the generated source round-trips,
            # the compiled function is revived on first use.
            from .specialize import revive_kernel

            kernel = revive_kernel(code.program, code)
            if kernel is not None:
                return kernel(rt, env, renv)
        entry = code.fast_entry
        if entry is None:
            entry = code.entry
        return _execute(code.program, entry, code.nregs, rt, env, renv)
    count = code.counter + 1
    code.counter = count
    threshold = rt.flags.specialize
    if threshold and count >= threshold:
        from .specialize import specialize_body

        specialize_body(code.program, code)
        kernel = code.kernel
        if kernel is not None:
            return kernel(rt, env, renv)
        entry = code.fast_entry
        if entry is None:
            entry = code.entry
        return _execute(code.program, entry, code.nregs, rt, env, renv)
    return _execute(code.program, code.entry, code.nregs, rt, env, renv)


def _execute(program, pc, nregs, rt, env, renv):
    """Run one frame starting at ``pc``; returns the ``RETURN`` value."""
    code = program.code
    regs = [None] * nregs
    blocks: list = []
    temps = rt.temps
    tbase = len(temps)
    st = rt.stats
    heap = rt.heap
    checking = rt.checking
    sanitize = rt.sanitize

    while True:
        try:
            while True:
                ins = code[pc]
                op = ins[0]
                if op == 0:  # STEP
                    if checking:
                        n = ins[1]
                        while n:
                            st.steps += 1
                            rt.check_limits()
                            n -= 1
                    else:
                        st.steps += ins[1]
                    pc += 1
                elif op == 2:  # LOAD
                    regs[ins[1]] = env[ins[2]]
                    pc += 1
                elif op == 4:  # JF
                    pc = pc + 1 if regs[ins[1]] else ins[2]
                elif op == 1:  # IMM
                    regs[ins[1]] = ins[2]
                    pc += 1
                elif op == 29:  # DCALL_BEGIN
                    fn = env[ins[2]]
                    if type(fn) is not RFunClos:
                        raise RuntimeFault("region application of a non-fun value")
                    st.direct_calls += 1
                    regs[ins[1]] = fn
                    pc += 1
                elif op == 30:  # DCALL_FINISH
                    fn = regs[ins[2]]
                    arg = regs[ins[3]]
                    if sanitize:
                        rt.san_check(fn)
                        rt.san_check(arg)
                    temps.append(arg)
                    try:
                        call_renv = dict(fn.renv)
                        dropped = fn.dropped
                        idx = 0
                        for formal in fn.rparams:
                            if idx in dropped:
                                st.dropped_region_passes += 1
                            else:
                                call_renv[formal] = rt.resolve(ins[4][idx], renv)
                            idx += 1
                    finally:
                        temps.pop()
                    program.observed[ins[5]] = fn.code
                    call_env = dict(fn.venv)
                    call_env[fn.fname] = fn
                    call_env[fn.param] = arg
                    rt.depth += 1
                    if rt.depth > rt.flags.max_depth:
                        rt.depth -= 1
                        raise InterpreterLimit(
                            f"call depth exceeded ({rt.flags.max_depth})",
                            stats=st,
                        )
                    rt.env_stack.append(call_env)
                    try:
                        fcode = fn.code
                        if fcode is None:
                            regs[ins[1]] = rt.ev(fn.body, call_env, call_renv)
                        else:
                            regs[ins[1]] = _call_body(fcode, rt, call_env, call_renv)
                    finally:
                        rt.env_stack.pop()
                        rt.depth -= 1
                    pc += 1
                elif op == 33:  # PRIM
                    args = [regs[i] for i in ins[3]]
                    regs[ins[1]] = rt._apply_prim(ins[2], args, ins[4], renv)
                    pc += 1
                elif op == 6:  # PUSH
                    temps.append(regs[ins[1]])
                    pc += 1
                elif op == 7:  # POPN
                    del temps[-ins[1]:]
                    pc += 1
                elif op == 8:  # BIND
                    name = ins[1]
                    blocks.append((0, name, env.get(name, _MISSING)))
                    env[name] = regs[ins[2]]
                    pc += 1
                elif op == 9:  # UNBIND
                    blk = blocks.pop()
                    if blk[2] is _MISSING:
                        del env[blk[1]]
                    else:
                        env[blk[1]] = blk[2]
                    pc += 1
                elif op == 3:  # JUMP
                    pc = ins[1]
                elif op == 28:  # CALL
                    fn = regs[ins[2]]
                    arg = regs[ins[3]]
                    if sanitize:
                        rt.san_check(fn)
                        rt.san_check(arg)
                    tfn = type(fn)
                    if tfn is RClos:
                        call_env = dict(fn.venv)
                        call_env[fn.param] = arg
                    elif tfn is RFunClos:
                        call_env = dict(fn.venv)
                        call_env[fn.fname] = fn
                        call_env[fn.param] = arg
                    else:
                        raise RuntimeFault("application of a non-function value")
                    rt.depth += 1
                    if rt.depth > rt.flags.max_depth:
                        rt.depth -= 1
                        raise InterpreterLimit(
                            f"call depth exceeded ({rt.flags.max_depth})",
                            stats=st,
                        )
                    rt.env_stack.append(call_env)
                    try:
                        fcode = fn.code
                        if fcode is None:
                            regs[ins[1]] = rt.ev(fn.body, call_env, dict(fn.renv))
                        else:
                            regs[ins[1]] = _call_body(fcode, rt, call_env, dict(fn.renv))
                    finally:
                        rt.env_stack.pop()
                        rt.depth -= 1
                    pc += 1
                elif op == 15:  # SELECT
                    pair = regs[ins[2]]
                    if not isinstance(pair, RPair):
                        raise RuntimeFault("#i of a non-pair value")
                    if sanitize:
                        rt.san_check(pair)
                    regs[ins[1]] = pair.fst if ins[3] == 1 else pair.snd
                    pc += 1
                elif op == 5:  # RETURN
                    return regs[ins[1]]
                elif op == 12:  # PAIR
                    region = _alloc(rt, ins[4], renv, 2)
                    regs[ins[1]] = RPair(regs[ins[2]], regs[ins[3]], region)
                    pc += 1
                elif op == 13:  # CONS
                    region = _alloc(rt, ins[4], renv, 2)
                    regs[ins[1]] = RCons(regs[ins[2]], regs[ins[3]], region)
                    pc += 1
                elif op == 19:  # CASE
                    scrut = regs[ins[1]]
                    if sanitize:
                        rt.san_check(scrut)
                    for conname, bindmode, target in ins[3]:
                        if conname is not None:
                            if not isinstance(scrut, RData):
                                raise RuntimeFault("case on a non-datatype value")
                            if conname != scrut.conname:
                                continue
                        if bindmode == 1:
                            regs[ins[2]] = scrut.payload
                        elif bindmode == 2:
                            regs[ins[2]] = scrut
                        pc = target
                        break
                    else:
                        raise RuntimeFault(
                            f"Match: no case branch for constructor {scrut.conname}"
                        )
                elif op == 25:  # CLOS
                    venv = {}
                    for name in ins[5]:
                        venv[name] = env[name]
                    crenv = {}
                    if not rt.ml_mode:
                        for rho in ins[6]:
                            crenv[rho] = rt.resolve(rho, renv)
                    region = _alloc(rt, ins[7], renv, 1 + len(venv) + len(crenv))
                    regs[ins[1]] = RClos(
                        ins[3], ins[4], venv, crenv, region,
                        code=program.bodies[ins[2]],
                    )
                    pc += 1
                elif op == 26:  # FUN
                    venv = {}
                    for name in ins[7]:
                        venv[name] = env[name]
                    crenv = {}
                    if not rt.ml_mode:
                        for rho in ins[8]:
                            crenv[rho] = rt.resolve(rho, renv)
                    region = _alloc(rt, ins[9], renv, 1 + len(venv) + len(crenv))
                    regs[ins[1]] = RFunClos(
                        ins[3], ins[4], ins[5], ins[6], venv, crenv, region,
                        ins[10], code=program.bodies[ins[2]],
                    )
                    pc += 1
                elif op == 31:  # LETREGION
                    st.letregions += 1
                    created = []
                    for name, rho, kind, capacity in ins[1]:
                        region = heap.new_region(name, kind, capacity)
                        created.append((rho, region, renv.get(rho, _MISSING)))
                        renv[rho] = region
                    blocks.append((1, created))
                    pc += 1
                elif op == 32:  # ENDREGION
                    created = blocks.pop()[1]
                    temps.append(regs[ins[1]])
                    try:
                        for rho, region, saved in reversed(created):
                            heap.dealloc_region(region)
                            if saved is _MISSING:
                                del renv[rho]
                            else:
                                renv[rho] = saved
                            rt.maybe_gc_at_dealloc()
                    finally:
                        temps.pop()
                    pc += 1
                elif op == 16:  # DEREF
                    ref = regs[ins[2]]
                    if sanitize:
                        rt.san_check(ref)
                        rt.san_check(ref.contents)
                    regs[ins[1]] = ref.contents
                    pc += 1
                elif op == 17:  # ASSIGN
                    ref = regs[ins[2]]
                    value = regs[ins[3]]
                    if sanitize:
                        rt.san_check(ref)
                        rt.san_check(value)
                    ref.contents = value
                    rt.collector.note_write(ref)
                    regs[ins[1]] = UNIT
                    pc += 1
                elif op == 14:  # MKREF
                    region = _alloc(rt, ins[3], renv, 1)
                    regs[ins[1]] = RRef(regs[ins[2]], region)
                    pc += 1
                elif op == 10:  # MAKE_STR
                    region = _alloc(rt, ins[3], renv, ins[4])
                    regs[ins[1]] = RStr(ins[2], region)
                    pc += 1
                elif op == 11:  # MAKE_REAL
                    region = _alloc(rt, ins[3], renv, 1)
                    regs[ins[1]] = RReal(ins[2], region)
                    pc += 1
                elif op == 18:  # DATA
                    payload = None if ins[3] is None else regs[ins[3]]
                    region = _alloc(rt, ins[4], renv, 2)
                    regs[ins[1]] = RData(ins[2], payload, region)
                    pc += 1
                elif op == 27:  # RAPP
                    fn = regs[ins[2]]
                    if not isinstance(fn, RFunClos):
                        raise RuntimeFault("region application of a non-fun value")
                    if sanitize:
                        rt.san_check(fn)
                    st.region_apps += 1
                    temps.append(fn)
                    try:
                        call_renv = dict(fn.renv)
                        dropped = fn.dropped
                        idx = 0
                        for formal in fn.rparams:
                            if idx in dropped:
                                st.dropped_region_passes += 1
                            else:
                                call_renv[formal] = rt.resolve(ins[3][idx], renv)
                            idx += 1
                        venv = dict(fn.venv)
                        venv[fn.fname] = fn
                        region = _alloc(
                            rt, ins[4], renv, 1 + len(venv) + len(call_renv)
                        )
                    finally:
                        temps.pop()
                    regs[ins[1]] = RClos(
                        fn.param, fn.body, venv, call_renv, region, code=fn.code
                    )
                    pc += 1
                elif op == 20:  # LETEXN
                    key = ins[1]
                    blocks.append((0, key, env.get(key, _MISSING)))
                    env[key] = next(rt._exn_stamps)
                    pc += 1
                elif op == 21:  # EXN
                    payload = regs[ins[4]]
                    region = _alloc(rt, ins[5], renv, 2)
                    regs[ins[1]] = RExn(env[ins[2]], ins[3], payload, region)
                    pc += 1
                elif op == 22:  # RAISE
                    raise MLRaise(regs[ins[1]])
                elif op == 23:  # HANDLE
                    blocks.append((2, ins[1], ins[2], ins[3], len(temps)))
                    pc += 1
                elif op == 24:  # HANDLE_POP
                    blocks.pop()
                    pc += 1
                # ---- specialized tier (never reached when rt.checking
                # or tracing: BodyCode routes those runs to the
                # canonical segment) --------------------------------
                elif op == 34:  # SLOAD
                    st.steps += ins[1]
                    regs[ins[2]] = env[ins[3]]
                    pc += 1
                elif op == 35:  # SIMM
                    st.steps += ins[1]
                    regs[ins[2]] = ins[3]
                    pc += 1
                elif op == 36:  # SPRIM
                    st.steps += ins[1]
                    args = [regs[i] for i in ins[4]]
                    regs[ins[2]] = rt._apply_prim(ins[3], args, ins[5], renv)
                    pc += 1
                elif op == 37:  # INT_VI
                    a = regs[ins[3]]
                    if type(a) is int:
                        regs[ins[1]] = _INT_OPS[ins[2]](a, ins[4])
                    else:
                        regs[ins[1]] = rt._apply_prim(
                            ins[2], [a, ins[4]], None, renv
                        )
                    pc += 1
                elif op == 38:  # INT_VV
                    a = regs[ins[3]]
                    b = regs[ins[4]]
                    if type(a) is int and type(b) is int:
                        regs[ins[1]] = _INT_OPS[ins[2]](a, b)
                    else:
                        regs[ins[1]] = rt._apply_prim(ins[2], [a, b], None, renv)
                    pc += 1
                elif op == 39:  # CMPJF
                    a = regs[ins[3]]
                    b = regs[ins[4]]
                    if type(a) is int and type(b) is int:
                        cond = _INT_OPS[ins[2]](a, b)
                    else:
                        cond = rt._apply_prim(ins[2], [a, b], None, renv)
                    regs[ins[1]] = cond
                    pc = pc + 1 if cond else ins[5]
                elif op == 40:  # DCALL_KNOWN
                    fn = regs[ins[2]]
                    arg = regs[ins[3]]
                    temps.append(arg)
                    try:
                        call_renv = dict(fn.renv)
                        dropped = fn.dropped
                        idx = 0
                        for formal in fn.rparams:
                            if idx in dropped:
                                st.dropped_region_passes += 1
                            else:
                                call_renv[formal] = rt.resolve(ins[4][idx], renv)
                            idx += 1
                    finally:
                        temps.pop()
                    call_env = dict(fn.venv)
                    call_env[fn.fname] = fn
                    call_env[fn.param] = arg
                    rt.depth += 1
                    if rt.depth > rt.flags.max_depth:
                        rt.depth -= 1
                        raise InterpreterLimit(
                            f"call depth exceeded ({rt.flags.max_depth})",
                            stats=st,
                        )
                    rt.env_stack.append(call_env)
                    try:
                        body = ins[6]
                        if fn.code is body:
                            kernel = body.kernel
                            if kernel is not None:
                                regs[ins[1]] = kernel(rt, call_env, call_renv)
                            else:
                                entry = body.fast_entry
                                if entry is None:
                                    entry = body.entry
                                regs[ins[1]] = _execute(
                                    program, entry, body.nregs, rt,
                                    call_env, call_renv,
                                )
                        else:
                            fcode = fn.code
                            if fcode is None:
                                regs[ins[1]] = rt.ev(fn.body, call_env, call_renv)
                            else:
                                regs[ins[1]] = _call_body(fcode, rt, call_env, call_renv)
                    finally:
                        rt.env_stack.pop()
                        rt.depth -= 1
                    pc += 1
                else:  # pragma: no cover - compiler/ISA drift guard
                    raise AssertionError(
                        f"bytecode: unknown opcode {op} at pc {pc}"
                    )
        except MLRaise as exc:
            stamp = exc.value.stamp
            handled = False
            while blocks:
                blk = blocks.pop()
                kind = blk[0]
                if kind == 0:  # bind
                    if blk[2] is _MISSING:
                        del env[blk[1]]
                    else:
                        env[blk[1]] = blk[2]
                elif kind == 1:  # letregion: pop without injecting a GC
                    for rho, region, saved in reversed(blk[1]):
                        heap.dealloc_region(region)
                        if saved is _MISSING:
                            del renv[rho]
                        else:
                            renv[rho] = saved
                else:  # handler
                    if env[blk[2]] == stamp:
                        del temps[blk[4]:]
                        regs[blk[3]] = exc.value.payload
                        pc = blk[1]
                        handled = True
                        break
            if not handled:
                del temps[tbase:]
                raise
        except BaseException:
            # A fault or resource limit: unwind this frame's regions
            # (their deallocations are observable through the stats the
            # error carries) and re-raise.  Never inject a collection.
            while blocks:
                blk = blocks.pop()
                kind = blk[0]
                if kind == 0:
                    if blk[2] is _MISSING:
                        del env[blk[1]]
                    else:
                        env[blk[1]] = blk[2]
                elif kind == 1:
                    for rho, region, saved in reversed(blk[1]):
                        heap.dealloc_region(region)
                        if saved is _MISSING:
                            del renv[rho]
                        else:
                            renv[rho] = saved
            del temps[tbase:]
            raise


def _int_div(a, b):
    if b == 0:
        raise RuntimeFault("Div: division by zero")
    return a // b


def _int_mod(a, b):
    if b == 0:
        raise RuntimeFault("Mod: modulo by zero")
    return a - (a // b) * b


#: Integer fast paths of the specialized compare/arith ops; every entry
#: matches the corresponding ``Interp._apply_prim`` branch on ints.
_INT_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _int_div,
    "mod": _int_mod,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

#: Ops :data:`_INT_OPS` may fuse (INT_VI/INT_VV/CMPJF operands).
INT_FUSABLE = frozenset(_INT_OPS)

"""Bytecode VM backend: term lowering, dispatch loop, trace-guided
specialization, and a stable textual disassembler.

Public surface::

    program = compile_bytecode(term, prep, strategy, multiplicity, drop_regions)
    value   = program.main(rt, env, renv)     # code= hook for run_term
    text    = disassemble(program)

See ``docs/bytecode.md`` for the ISA reference.
"""

from . import isa
from .compiler import compile_bytecode
from .disasm import disassemble
from .vm import BodyCode, BytecodeProgram

__all__ = [
    "BodyCode",
    "BytecodeProgram",
    "compile_bytecode",
    "disassemble",
    "isa",
]

"""The region abstract machine: runtime values, the region heap (regions,
pages, finite/infinite representation), the reference-tracing copying
collector with dangling-pointer detection, the big-step interpreter with
an explicit shadow stack of GC roots, and the paper-faithful small-step
semantics of Figure 6."""

from .stats import RunStats
from .interp import run_term

__all__ = ["RunStats", "run_term"]

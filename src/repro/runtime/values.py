"""Runtime values of the region abstract machine.

Unboxed values are plain Python objects: ``int`` and ``bool`` for
MiniML's ``int``/``bool`` (ints are *tagged* immediates in the MLKit's
partly tag-free scheme — Section 6), the singletons :data:`UNIT` and
:data:`NIL`.  Boxed values carry the :class:`~repro.runtime.heap.Region`
they live in and an abstract size in words; they are what the collector
traces.  Pairs, cons cells, reference cells, and reals are *tag-free*
(no header word) under the region-type discipline, which is the
representation saving the paper's Section 6 mentions.
"""

from __future__ import annotations

__all__ = [
    "Unit",
    "UNIT",
    "Nil",
    "NIL",
    "RBox",
    "RStr",
    "RReal",
    "RPair",
    "RCons",
    "RClos",
    "RFunClos",
    "RRef",
    "RArray",
    "RData",
    "RExn",
    "is_boxed",
    "words_of",
    "show_value",
    "real_to_sml_string",
    "structural_eq",
]


class Unit:
    __slots__ = ()

    def __repr__(self) -> str:
        return "()"


class Nil:
    __slots__ = ()

    def __repr__(self) -> str:
        return "[]"


UNIT = Unit()
NIL = Nil()


class RBox:
    """Base class of boxed (region-allocated, traced) values."""

    __slots__ = ("region", "gen", "san", "page", "page_san")

    def __init__(self, region) -> None:
        self.region = region
        self.gen = 0  # generation for the generational collector
        #: The region's generation stamp at allocation time — the pointer
        #: sanitizer's liveness witness (``san != region.stamp`` means the
        #: region was deallocated after this value was placed in it).
        self.san = region.stamp
        #: The page this value was born on, with the page's recycle
        #: stamp at that moment: the sanitizer's *second* witness.  A
        #: page returned to the free list bumps its stamp, so a recycled
        #: page serving a new region can never validate an old value —
        #: even if the value's region field were forged to point at the
        #: page's new owner.  The collector retires the witness (to the
        #: never-stamped ``NO_PAGE`` sentinel) when it evacuates the
        #: value, mirroring the pointer update of a real copy.
        page = region.cur_page
        self.page = page
        self.page_san = page.stamp


class RStr(RBox):
    __slots__ = ("value",)

    def __init__(self, value: str, region) -> None:
        super().__init__(region)
        self.value = value

    def words(self) -> int:
        return 1 + (len(self.value) + 7) // 8


class RReal(RBox):
    __slots__ = ("value",)

    def __init__(self, value: float, region) -> None:
        super().__init__(region)
        self.value = value

    def words(self) -> int:
        return 1


class RPair(RBox):
    __slots__ = ("fst", "snd")

    def __init__(self, fst, snd, region) -> None:
        super().__init__(region)
        self.fst = fst
        self.snd = snd

    def words(self) -> int:
        return 2


class RCons(RBox):
    __slots__ = ("head", "tail")

    def __init__(self, head, tail, region) -> None:
        super().__init__(region)
        self.head = head
        self.tail = tail

    def words(self) -> int:
        return 2


class RClos(RBox):
    """An ordinary closure: code pointer plus captured values/regions.

    ``code`` is the compiled-closure fast path for ``body`` (see
    :mod:`repro.runtime.compile`); ``None`` under the tree-walking
    interpreter.  It is metadata, not data: it contributes no words.
    """

    __slots__ = ("param", "body", "venv", "renv", "code")

    def __init__(self, param, body, venv: dict, renv: dict, region,
                 code=None) -> None:
        super().__init__(region)
        self.param = param
        self.body = body
        self.venv = venv
        self.renv = renv
        self.code = code

    def words(self) -> int:
        return 1 + len(self.venv) + len(self.renv)


class RFunClos(RBox):
    """A region-polymorphic function closure (awaits region arguments).

    ``dropped`` is the set of region-parameter indices the drop-regions
    analysis proved are never stored into; the runtime skips passing
    those (paper Section 4.2).
    """

    __slots__ = ("fname", "rparams", "param", "body", "venv", "renv", "dropped",
                 "code")

    def __init__(self, fname, rparams, param, body, venv: dict, renv: dict,
                 region, dropped: frozenset = frozenset(), code=None) -> None:
        super().__init__(region)
        self.fname = fname
        self.rparams = rparams
        self.param = param
        self.body = body
        self.venv = venv
        self.renv = renv
        self.dropped = dropped
        self.code = code

    def words(self) -> int:
        return 1 + len(self.venv) + len(self.renv)


class RRef(RBox):
    __slots__ = ("contents",)

    def __init__(self, contents, region) -> None:
        super().__init__(region)
        self.contents = contents

    def words(self) -> int:
        return 1


class RArray(RBox):
    """A mutable array: a header word plus one word per slot.  Slots are
    updated in place (``Array.update``), so arrays go through the same
    generational write barrier as ``ref`` cells."""

    __slots__ = ("slots",)

    def __init__(self, slots: list, region) -> None:
        super().__init__(region)
        self.slots = slots

    def words(self) -> int:
        return 1 + len(self.slots)


class RData(RBox):
    """A datatype value: constructor name plus optional payload."""

    __slots__ = ("conname", "payload")

    def __init__(self, conname: str, payload, region) -> None:
        super().__init__(region)
        self.conname = conname
        self.payload = payload

    def words(self) -> int:
        return 2


class RExn(RBox):
    """An exception value: generative stamp, name, optional payload."""

    __slots__ = ("stamp", "name", "payload")

    def __init__(self, stamp: int, name: str, payload, region) -> None:
        super().__init__(region)
        self.stamp = stamp
        self.name = name
        self.payload = payload

    def words(self) -> int:
        return 2


def real_to_sml_string(x: float) -> str:
    """``Real.toString`` per the SML Basis: ``fmt (StringCvt.GEN NONE)``,
    i.e. up to 12 significant digits, ``~`` for minus (mantissa and
    exponent), ``E`` for the exponent marker with no ``+`` sign or zero
    padding, a ``.0`` suffix on integral fixed-point values, and
    ``inf``/``~inf``/``nan`` for the non-finite values.
    """
    if x != x:  # nan (covers -nan too: SML prints both as "nan")
        return "nan"
    if x == float("inf"):
        return "inf"
    if x == float("-inf"):
        return "~inf"
    s = "%.12g" % x
    mantissa, e, exponent = s.partition("e")
    if "." not in mantissa and not e:
        mantissa += ".0"
    if e:
        exponent = exponent.lstrip("+")
        neg_exp = exponent.startswith("-")
        exponent = exponent.lstrip("-").lstrip("0") or "0"
        mantissa += "E" + ("~" if neg_exp else "") + exponent
    return mantissa.replace("-", "~")


def structural_eq(a, b) -> bool:
    """SML structural equality over runtime values.

    Equality types compare by structure: immediates by value, strings by
    contents, pairs/lists/datatype values recursively, and ``ref`` cells
    by identity (SML compares refs by pointer, never contents).  Reals
    and functions are not equality types — the frontend rejects ``=`` on
    them — so meeting one here is a fault, not a silent identity
    comparison.  Iterative so megabyte-long list spines cannot blow the
    Python stack.
    """
    from ..core.errors import RuntimeFault

    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        cx = type(x)
        if cx is not type(y):
            # Well-typed operands always agree on representation except
            # list spines, where nil meets cons.
            if {cx, type(y)} <= {Nil, RCons}:
                return False
            raise RuntimeFault(
                f"= applied to incompatible representations "
                f"{cx.__name__}/{type(y).__name__}"
            )
        if cx is RCons:
            stack.append((x.head, y.head))
            stack.append((x.tail, y.tail))
        elif cx is RPair:
            stack.append((x.fst, y.fst))
            stack.append((x.snd, y.snd))
        elif cx is RStr:
            if x.value != y.value:
                return False
        elif cx is RData:
            if x.conname != y.conname:
                return False
            if x.payload is not None:
                stack.append((x.payload, y.payload))
        elif cx is RRef or cx is RArray:
            # SML compares refs and arrays by pointer, never contents.
            if x is not y:
                return False
        elif cx in (Unit, Nil):
            pass
        elif cx is RReal:
            raise RuntimeFault("= applied to real: real is not an equality type")
        elif cx in (RClos, RFunClos):
            raise RuntimeFault("= applied to a function value")
        elif cx is RExn:
            raise RuntimeFault("= applied to exn: exn is not an equality type")
        else:  # int / bool
            if x != y:
                return False
    return True


def is_boxed(v) -> bool:
    return isinstance(v, RBox)


def words_of(v) -> int:
    return v.words() if isinstance(v, RBox) else 0


def show_value(v, depth: int = 0) -> str:
    """Render a runtime value like an ML toplevel would."""
    if depth > 6:
        return "..."
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, int):
        return str(v) if v >= 0 else f"~{-v}"
    if isinstance(v, Unit):
        return "()"
    if isinstance(v, Nil):
        return "[]"
    if isinstance(v, RStr):
        return f'"{v.value}"'
    if isinstance(v, RReal):
        return real_to_sml_string(v.value)
    if isinstance(v, RPair):
        return f"({show_value(v.fst, depth + 1)}, {show_value(v.snd, depth + 1)})"
    if isinstance(v, RCons):
        items = []
        node = v
        while isinstance(node, RCons) and len(items) < 24:
            items.append(show_value(node.head, depth + 1))
            node = node.tail
        suffix = "" if isinstance(node, Nil) else ", ..."
        return "[" + ", ".join(items) + suffix + "]"
    if isinstance(v, (RClos, RFunClos)):
        return "fn"
    if isinstance(v, RRef):
        return f"ref {show_value(v.contents, depth + 1)}"
    if isinstance(v, RArray):
        items = [show_value(s, depth + 1) for s in v.slots[:24]]
        suffix = "" if len(v.slots) <= 24 else ", ..."
        return "[|" + ", ".join(items) + suffix + "|]"
    if isinstance(v, RExn):
        return f"exn {v.name}"
    if isinstance(v, RData):
        if v.payload is None:
            return v.conname
        return f"{v.conname} {show_value(v.payload, depth + 1)}"
    return repr(v)

"""Runtime values of the region abstract machine.

Unboxed values are plain Python objects: ``int`` and ``bool`` for
MiniML's ``int``/``bool`` (ints are *tagged* immediates in the MLKit's
partly tag-free scheme — Section 6), the singletons :data:`UNIT` and
:data:`NIL`.  Boxed values carry the :class:`~repro.runtime.heap.Region`
they live in and an abstract size in words; they are what the collector
traces.  Pairs, cons cells, reference cells, and reals are *tag-free*
(no header word) under the region-type discipline, which is the
representation saving the paper's Section 6 mentions.
"""

from __future__ import annotations

__all__ = [
    "Unit",
    "UNIT",
    "Nil",
    "NIL",
    "RBox",
    "RStr",
    "RReal",
    "RPair",
    "RCons",
    "RClos",
    "RFunClos",
    "RRef",
    "RData",
    "RExn",
    "is_boxed",
    "words_of",
    "show_value",
]


class Unit:
    __slots__ = ()

    def __repr__(self) -> str:
        return "()"


class Nil:
    __slots__ = ()

    def __repr__(self) -> str:
        return "[]"


UNIT = Unit()
NIL = Nil()


class RBox:
    """Base class of boxed (region-allocated, traced) values."""

    __slots__ = ("region", "gen")

    def __init__(self, region) -> None:
        self.region = region
        self.gen = 0  # generation for the generational collector


class RStr(RBox):
    __slots__ = ("value",)

    def __init__(self, value: str, region) -> None:
        super().__init__(region)
        self.value = value

    def words(self) -> int:
        return 1 + (len(self.value) + 7) // 8


class RReal(RBox):
    __slots__ = ("value",)

    def __init__(self, value: float, region) -> None:
        super().__init__(region)
        self.value = value

    def words(self) -> int:
        return 1


class RPair(RBox):
    __slots__ = ("fst", "snd")

    def __init__(self, fst, snd, region) -> None:
        super().__init__(region)
        self.fst = fst
        self.snd = snd

    def words(self) -> int:
        return 2


class RCons(RBox):
    __slots__ = ("head", "tail")

    def __init__(self, head, tail, region) -> None:
        super().__init__(region)
        self.head = head
        self.tail = tail

    def words(self) -> int:
        return 2


class RClos(RBox):
    """An ordinary closure: code pointer plus captured values/regions."""

    __slots__ = ("param", "body", "venv", "renv")

    def __init__(self, param, body, venv: dict, renv: dict, region) -> None:
        super().__init__(region)
        self.param = param
        self.body = body
        self.venv = venv
        self.renv = renv

    def words(self) -> int:
        return 1 + len(self.venv) + len(self.renv)


class RFunClos(RBox):
    """A region-polymorphic function closure (awaits region arguments).

    ``dropped`` is the set of region-parameter indices the drop-regions
    analysis proved are never stored into; the runtime skips passing
    those (paper Section 4.2).
    """

    __slots__ = ("fname", "rparams", "param", "body", "venv", "renv", "dropped")

    def __init__(self, fname, rparams, param, body, venv: dict, renv: dict,
                 region, dropped: frozenset = frozenset()) -> None:
        super().__init__(region)
        self.fname = fname
        self.rparams = rparams
        self.param = param
        self.body = body
        self.venv = venv
        self.renv = renv
        self.dropped = dropped

    def words(self) -> int:
        return 1 + len(self.venv) + len(self.renv)


class RRef(RBox):
    __slots__ = ("contents",)

    def __init__(self, contents, region) -> None:
        super().__init__(region)
        self.contents = contents

    def words(self) -> int:
        return 1


class RData(RBox):
    """A datatype value: constructor name plus optional payload."""

    __slots__ = ("conname", "payload")

    def __init__(self, conname: str, payload, region) -> None:
        super().__init__(region)
        self.conname = conname
        self.payload = payload

    def words(self) -> int:
        return 2


class RExn(RBox):
    """An exception value: generative stamp, name, optional payload."""

    __slots__ = ("stamp", "name", "payload")

    def __init__(self, stamp: int, name: str, payload, region) -> None:
        super().__init__(region)
        self.stamp = stamp
        self.name = name
        self.payload = payload

    def words(self) -> int:
        return 2


def is_boxed(v) -> bool:
    return isinstance(v, RBox)


def words_of(v) -> int:
    return v.words() if isinstance(v, RBox) else 0


def show_value(v, depth: int = 0) -> str:
    """Render a runtime value like an ML toplevel would."""
    if depth > 6:
        return "..."
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, int):
        return str(v) if v >= 0 else f"~{-v}"
    if isinstance(v, Unit):
        return "()"
    if isinstance(v, Nil):
        return "[]"
    if isinstance(v, RStr):
        return f'"{v.value}"'
    if isinstance(v, RReal):
        return repr(v.value)
    if isinstance(v, RPair):
        return f"({show_value(v.fst, depth + 1)}, {show_value(v.snd, depth + 1)})"
    if isinstance(v, RCons):
        items = []
        node = v
        while isinstance(node, RCons) and len(items) < 24:
            items.append(show_value(node.head, depth + 1))
            node = node.tail
        suffix = "" if isinstance(node, Nil) else ", ..."
        return "[" + ", ".join(items) + suffix + "]"
    if isinstance(v, (RClos, RFunClos)):
        return "fn"
    if isinstance(v, RRef):
        return f"ref {show_value(v.contents, depth + 1)}"
    if isinstance(v, RExn):
        return f"exn {v.name}"
    if isinstance(v, RData):
        if v.payload is None:
            return v.conname
        return f"{v.conname} {show_value(v.payload, depth + 1)}"
    return repr(v)

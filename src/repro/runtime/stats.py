"""Execution statistics: the measurable quantities behind Figure 9.

* ``peak_words`` is our analogue of the paper's ``rss`` column: the
  maximum number of live heap words (region pages + finite stack words)
  observed at any point.
* ``gc_count`` is the ``gc #`` column.
* ``steps`` (interpreter nodes evaluated) provides a deterministic
  machine-independent time proxy next to wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["RunStats"]

#: Fields that are *high-water marks* rather than monotonic counters:
#: aggregating two runs takes their maximum, not their sum.
_PEAK_FIELDS = frozenset({"peak_words", "peak_pages", "max_region_stack"})


@dataclass
class RunStats:
    steps: int = 0
    allocations: int = 0
    allocated_words: int = 0
    peak_words: int = 0
    current_words: int = 0
    #: Page residency: fixed-size region pages currently owned by live
    #: regions, and the high-water mark ``peak_pages`` — the
    #: fragmentation-aware sibling of ``peak_words`` (a copying
    #: collection's to-space reserve crests here mid-GC).
    peak_pages: int = 0
    current_pages: int = 0
    #: Fresh pages ever created vs. pages served from the free list.
    pages_created: int = 0
    pages_recycled: int = 0
    #: Words lost to closed partial pages (a value never spans a page
    #: boundary) — cumulative internal fragmentation.
    page_waste_words: int = 0
    gc_count: int = 0
    gc_minor_count: int = 0
    gc_traced_words: int = 0
    gc_reclaimed_words: int = 0
    #: Collections triggered by a fault-injection plan (a subset of
    #: ``gc_count + gc_minor_count``).
    gc_injected: int = 0
    #: Old-to-young pointers recorded by the generational write barrier.
    remembered_writes: int = 0
    letregions: int = 0
    region_deallocs: int = 0
    region_apps: int = 0
    direct_calls: int = 0
    finite_allocations: int = 0
    infinite_regions_created: int = 0
    finite_regions_created: int = 0
    max_region_stack: int = 0
    dropped_region_passes: int = 0

    def note_current(self) -> None:
        """Fold the current footprint gauges into their high-water
        marks.  The **single** place peak accounting happens: every
        allocation path (tree walker, closure backend's inlined fast
        path, bytecode kernels) and the collector's to-space page
        reserve call this, so backends cannot drift on peak guards."""
        if self.current_words > self.peak_words:
            self.peak_words = self.current_words
        if self.current_pages > self.peak_pages:
            self.peak_pages = self.current_pages

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        """Inverse of :meth:`to_dict`.  Unknown keys are ignored so stats
        serialized by a newer schema still load; missing keys keep their
        defaults."""
        known = {k: v for k, v in data.items() if k in cls.__dataclass_fields__}
        return cls(**known)

    def merge(self, other: "RunStats") -> "RunStats":
        """Fleet aggregation of two runs: counters add, high-water marks
        (``peak_words``, ``max_region_stack``) take the maximum.  Neither
        operand is mutated.  Used by the serving layer's metrics registry
        to fold per-job statistics into fleet totals."""
        merged = {}
        for name in self.__dataclass_fields__:
            a, b = getattr(self, name), getattr(other, name)
            merged[name] = max(a, b) if name in _PEAK_FIELDS else a + b
        return RunStats(**merged)

    @classmethod
    def aggregate(cls, runs: Iterable["RunStats"]) -> "RunStats":
        """Fold any number of runs with :meth:`merge` (zero runs -> the
        all-zero stats)."""
        total = cls()
        for stats in runs:
            total = total.merge(stats)
        return total

    def summary(self) -> str:
        return (
            f"steps={self.steps} allocs={self.allocations} "
            f"alloc_words={self.allocated_words} peak_words={self.peak_words} "
            f"peak_pages={self.peak_pages} "
            f"gc={self.gc_count} (minor {self.gc_minor_count}) "
            f"letregions={self.letregions}"
        )

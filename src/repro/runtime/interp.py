"""The big-step region interpreter with an explicit shadow stack of GC
roots.

Evaluation follows the region-annotated term: ``letregion`` pushes and
pops regions, ``at rho`` allocations go into the region bound to ``rho``
in the current region environment, region application specializes a
region-polymorphic closure with concrete regions.  A collection can be
triggered at any allocation; the interpreter therefore maintains

* ``env_stack`` — the value environments of all active frames, and
* ``temps``    — intermediate values that are live across a nested
  evaluation,

whose union is the collector's root set.  This is the "shadow stack"
discipline a real collector gets from stack maps.

Two cross-cutting modes:

* ``Strategy.ML`` ignores regions entirely: every allocation goes into
  one global heap, ``letregion`` is a no-op — the MLton stand-in.
* the *direct-call* optimization evaluates ``(f [rhos] at r) arg`` without
  materializing the intermediate specialized closure, which is how the
  MLKit compiles calls to known functions; the formal [Rapp]+[App] steps
  are preserved observably (and exactly by the small-step machine in
  :mod:`repro.runtime.smallstep`).
"""

from __future__ import annotations

import itertools
import sys
import time
from typing import Optional

from ..config import RuntimeFlags, Strategy
from ..core import terms as T
from ..core.errors import (
    DeadlineExceeded,
    InterpreterLimit,
    MLExceptionError,
    ReproError,
    RuntimeFault,
    StalePointerError,
)
from ..core.effects import RegionVar
from .gc import Collector
from .heap import FINITE, Heap, INFINITE, Region
from .stats import RunStats
from .values import (
    NIL,
    Nil,
    RArray,
    RBox,
    RClos,
    RCons,
    RData,
    RExn,
    RFunClos,
    RPair,
    RReal,
    RRef,
    RStr,
    UNIT,
    is_boxed,
    real_to_sml_string,
    show_value,
    structural_eq,
)

__all__ = ["Interp", "MLRaise", "run_term", "prepare"]


class MLRaise(Exception):
    """A MiniML exception in flight."""

    def __init__(self, value: RExn) -> None:
        super().__init__(value.name)
        self.value = value


# ---------------------------------------------------------------------------
# Load-time preparation
# ---------------------------------------------------------------------------


class Prepared:
    """Per-program tables computed once before evaluation."""

    __slots__ = ("free_vars", "free_regions", "direct_calls")

    def __init__(self) -> None:
        self.free_vars: dict[int, tuple] = {}
        self.free_regions: dict[int, tuple] = {}
        self.direct_calls: set = set()


def _exn_key(name: str) -> str:
    return f"exn:{name}"


def prepare(term: T.Term) -> Prepared:
    """Compute free-variable/free-region tables for closure capture and
    mark direct-call sites.

    Freeness is *local*: each node's result is the set of names/regions
    free in that subtree after removing the subtree's own binders, so a
    closure's capture set correctly includes outer ``let``-bound names
    and outer ``letregion``-bound regions.
    """
    prep = Prepared()

    def fv(t: T.Term) -> tuple[frozenset, frozenset]:
        """(free program names incl. exception stamps, free region vars)."""
        if isinstance(t, T.Var):
            return frozenset({t.name}), frozenset()
        if isinstance(t, (T.IntLit, T.BoolLit, T.UnitLit, T.NilLit)):
            return frozenset(), frozenset()
        if isinstance(t, (T.StringLit, T.RealLit)):
            return frozenset(), _r({t.rho})
        if isinstance(t, T.Lam):
            names, regions = fv(t.body)
            names -= {t.param}
            prep.free_vars[id(t)] = tuple(sorted(names))
            prep.free_regions[id(t)] = tuple(sorted(regions, key=lambda r: r.ident))
            return names, regions | _r({t.rho})
        if isinstance(t, T.FunDef):
            names, regions = fv(t.body)
            names -= {t.fname, t.param}
            regions -= set(t.rparams)
            prep.free_vars[id(t)] = tuple(sorted(names))
            prep.free_regions[id(t)] = tuple(sorted(regions, key=lambda r: r.ident))
            return names, regions | _r({t.rho})
        if isinstance(t, T.RApp):
            names, regions = fv(t.fn)
            if isinstance(t.fn, T.Var):
                pass
            return names, regions | _r(set(t.rargs) | {t.rho})
        if isinstance(t, T.App):
            n1, r1 = fv(t.fn)
            n2, r2 = fv(t.arg)
            if isinstance(t.fn, T.RApp) and isinstance(t.fn.fn, T.Var):
                prep.direct_calls.add(id(t))
            return n1 | n2, r1 | r2
        if isinstance(t, T.Let):
            n1, r1 = fv(t.rhs)
            n2, r2 = fv(t.body)
            return n1 | (n2 - {t.name}), r1 | r2
        if isinstance(t, T.Letregion):
            names, regions = fv(t.body)
            return names, regions - set(t.rhos)
        if isinstance(t, T.Pair):
            n1, r1 = fv(t.fst)
            n2, r2 = fv(t.snd)
            return n1 | n2, r1 | r2 | _r({t.rho})
        if isinstance(t, T.Select):
            return fv(t.pair)
        if isinstance(t, T.Cons):
            n1, r1 = fv(t.head)
            n2, r2 = fv(t.tail)
            return n1 | n2, r1 | r2 | _r({t.rho})
        if isinstance(t, T.If):
            n1, r1 = fv(t.cond)
            n2, r2 = fv(t.then)
            n3, r3 = fv(t.els)
            return n1 | n2 | n3, r1 | r2 | r3
        if isinstance(t, T.Prim):
            names: frozenset = frozenset()
            regions: frozenset = frozenset()
            for a in t.args:
                n, r = fv(a)
                names |= n
                regions |= r
            if t.rho is not None:
                regions |= _r({t.rho})
            return names, regions
        if isinstance(t, T.MkRef):
            n, r = fv(t.init)
            return n, r | _r({t.rho})
        if isinstance(t, T.Deref):
            return fv(t.ref)
        if isinstance(t, T.Assign):
            n1, r1 = fv(t.ref)
            n2, r2 = fv(t.value)
            return n1 | n2, r1 | r2
        if isinstance(t, T.LetExn):
            n, r = fv(t.body)
            return n - {_exn_key(t.exname)}, r
        if isinstance(t, T.Con):
            names = frozenset({_exn_key(t.exname)})
            regions = _r({t.rho})
            if t.arg is not None:
                n, r = fv(t.arg)
                names |= n
                regions |= r
            return names, regions
        if isinstance(t, T.LetData):
            return fv(t.body)
        if isinstance(t, T.DataCon):
            regions = _r({t.rho})
            if t.arg is None:
                return frozenset(), regions
            n, r = fv(t.arg)
            return n, r | regions
        if isinstance(t, T.Case):
            names, regions = fv(t.scrutinee)
            for br in t.branches:
                n, r = fv(br.body)
                if br.binder:
                    n = n - {br.binder}
                names |= n
                regions |= r
            return names, regions
        if isinstance(t, T.Raise):
            return fv(t.exn)
        if isinstance(t, T.Handle):
            n1, r1 = fv(t.body)
            n2, r2 = fv(t.handler)
            n2 -= frozenset({t.binder} if t.binder else ())
            return n1 | n2 | {_exn_key(t.exname)}, r1 | r2
        raise TypeError(f"prepare: unknown term {type(t).__name__}")

    fv(term)
    return prep


def _r(regions: set) -> frozenset:
    return frozenset(r for r in regions if not r.top)


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class Interp:
    def __init__(
        self,
        term: T.Term,
        strategy: Strategy,
        runtime: RuntimeFlags,
        multiplicity=None,
        drop_regions=None,
        prep: Prepared | None = None,
    ) -> None:
        self.term = term
        self.strategy = strategy
        self.flags = runtime
        self.stats = RunStats()
        self.heap = Heap(runtime, self.stats)
        self.collector = Collector(self.heap, generational=runtime.generational)
        self.multiplicity = multiplicity
        self.drop_regions = drop_regions
        self.prep = prep if prep is not None else prepare(term)
        self.ml_mode = strategy is Strategy.ML
        self.use_gc = strategy.uses_gc
        self.output: list[str] = []
        self.env_stack: list[dict] = []
        self.temps: list = []
        self.depth = 0
        self._exn_stamps = itertools.count(1)
        self._deadline: float | None = None
        #: Pointer-sanitizer mode: stamp-check boxed values at every read
        #: and write (the collector checks scavenges on its own).
        self.sanitize = runtime.sanitize
        #: True iff the per-step limit checks can ever fire — the compiled
        #: fast path guards its (otherwise pure-overhead) prologue on this.
        #: Sanitize mode also sets it: every fused fast-path variant bails
        #: to its canonical kernel under ``checking`` (with identical step
        #: accounting), and only the canonical kernels carry the sanitizer
        #: probes.
        self.checking = (
            runtime.max_steps is not None
            or runtime.deadline_seconds is not None
            or runtime.sanitize
        )

    # -- roots and GC ------------------------------------------------------------

    def roots(self):
        for env in self.env_stack:
            yield from env.values()
        yield from self.temps

    def maybe_gc(self) -> None:
        if not self.use_gc:
            return
        kind = self.heap.gc_decision()
        if kind is None:
            return
        if self.flags.fault_plan is not None:
            self.stats.gc_injected += 1
        self.collector.collect_kind(kind, self.roots())

    def maybe_gc_at_dealloc(self) -> None:
        """A fault plan may inject a collection at a region-deallocation
        point — the GC point at which the paper's Figure 1 fault is first
        observable even when the dangle window contains no allocation (so
        ``gc_every_alloc`` alone cannot reach it)."""
        if not self.use_gc:
            return
        kind = self.heap.dealloc_gc_decision()
        if kind is None:
            return
        self.stats.gc_injected += 1
        self.collector.collect_kind(kind, self.roots())

    def alloc(self, rho: RegionVar, renv: dict, words: int) -> Region:
        region = self.resolve(rho, renv)
        self.heap.alloc(region, words)
        self.maybe_gc()
        return region

    def san_check(self, value) -> None:
        """Sanitizer liveness check at a read/write access point: the
        region-stamp witness first, then the birth-page witness (a page
        recycled through the free list invalidates every value born on
        it, even if the value's region field were forged)."""
        if isinstance(value, RBox):
            if value.san != value.region.stamp:
                self.san_fault(value)
            if value.page_san != value.page.stamp:
                self.san_fault(value, page=True)

    def san_fault(self, value, page: bool = False) -> None:
        region = value.region
        tr = self.heap.trace
        if tr.enabled:
            tr.emit(
                "dangle",
                step=self.stats.steps,
                region=region.ident,
                name=region.name,
                obj=type(value).__name__,
                sanitizer=True,
            )
        if page:
            raise StalePointerError(
                f"sanitizer: access through a value whose birth page was "
                f"recycled (region {region.name}, object "
                f"{type(value).__name__}, page stamp {value.page_san} != "
                f"{value.page.stamp})",
                region_id=region.ident,
            )
        raise StalePointerError(
            f"sanitizer: access through a stale pointer into region "
            f"{region.name} (object {type(value).__name__}, stamp "
            f"{value.san} != {region.stamp})",
            region_id=region.ident,
        )

    def resolve(self, rho: RegionVar, renv: dict) -> Region:
        if self.ml_mode or rho.top:
            return self.heap.global_region
        region = renv.get(rho)
        if region is None:
            raise RuntimeFault(f"unbound region variable {rho.display()}")
        return region

    # -- execution ------------------------------------------------------------------

    def check_limits(self) -> None:
        """The per-step limit checks, verbatim from the top of :meth:`ev`.

        The compiled fast path calls this from its per-node prologue when
        :attr:`checking` is set, so limit behaviour (including the
        every-256-steps deadline cadence) is bit-identical to the
        tree-walking interpreter.
        """
        if self.flags.max_steps is not None and self.stats.steps > self.flags.max_steps:
            raise InterpreterLimit(
                f"step budget exceeded ({self.flags.max_steps})", stats=self.stats
            )
        if (
            self._deadline is not None
            and (self.stats.steps & 255) == 0
            and time.monotonic() > self._deadline
        ):
            raise DeadlineExceeded(
                f"wall-clock deadline exceeded ({self.flags.deadline_seconds}s)",
                stats=self.stats,
            )

    def run(self, code=None):
        """Evaluate the program: via :meth:`ev` (the tree walker), or via
        ``code`` — a closure compiled by :mod:`repro.runtime.compile` —
        when one is supplied."""
        base_env: dict = {}
        base_renv: dict = {}
        if self.flags.deadline_seconds is not None:
            self._deadline = time.monotonic() + self.flags.deadline_seconds
        tr = self.heap.trace
        if tr.enabled:
            from .trace import SCHEMA_VERSION

            tr.emit(
                "run_begin",
                step=0,
                strategy=self.strategy.value,
                generational=self.collector.generational,
                policy=self.collector.policy.name,
                schema=SCHEMA_VERSION,
            )
        self.env_stack.append(base_env)
        try:
            if code is not None:
                value = code(self, base_env, base_renv)
            else:
                value = self.ev(self.term, base_env, base_renv)
        except MLRaise as exc:
            raise MLExceptionError(exc.value.name, exc.value.payload) from exc
        finally:
            self.env_stack.pop()
        if tr.enabled:
            # A faulted run (dangling pointer, resource limit) ends at
            # the fault's own event instead; run_end marks completion.
            s = self.stats
            tr.emit(
                "run_end",
                step=s.steps,
                steps=s.steps,
                allocations=s.allocations,
                peak_words=s.peak_words,
                peak_pages=s.peak_pages,
                gc_count=s.gc_count,
                gc_minor_count=s.gc_minor_count,
            )
        return value

    def ev(self, t: T.Term, env: dict, renv: dict):
        self.stats.steps += 1
        if self.flags.max_steps is not None and self.stats.steps > self.flags.max_steps:
            raise InterpreterLimit(
                f"step budget exceeded ({self.flags.max_steps})", stats=self.stats
            )
        if (
            self._deadline is not None
            and (self.stats.steps & 255) == 0
            and time.monotonic() > self._deadline
        ):
            raise DeadlineExceeded(
                f"wall-clock deadline exceeded ({self.flags.deadline_seconds}s)",
                stats=self.stats,
            )

        # hot immediates first
        cls = type(t)
        if cls is T.Var:
            return env[t.name]
        if cls is T.IntLit:
            return t.value
        if cls is T.App:
            return self._app(t, env, renv)
        if cls is T.Let:
            value = self.ev(t.rhs, env, renv)
            saved = env.get(t.name, _MISSING)
            env[t.name] = value
            try:
                return self.ev(t.body, env, renv)
            finally:
                if saved is _MISSING:
                    del env[t.name]
                else:
                    env[t.name] = saved
        if cls is T.If:
            cond = self.ev(t.cond, env, renv)
            return self.ev(t.then if cond else t.els, env, renv)
        if cls is T.Prim:
            return self._prim(t, env, renv)
        if cls is T.Letregion:
            return self._letregion(t, env, renv)
        if cls is T.RApp:
            return self._rapp(t, env, renv)
        if cls is T.BoolLit:
            return t.value
        if cls is T.UnitLit:
            return UNIT
        if cls is T.NilLit:
            return NIL
        if cls is T.StringLit:
            region = self.alloc(t.rho, renv, 1 + (len(t.value) + 7) // 8)
            return RStr(t.value, region)
        if cls is T.RealLit:
            region = self.alloc(t.rho, renv, 1)
            return RReal(t.value, region)
        if cls is T.Lam:
            return self._close_lam(t, env, renv)
        if cls is T.FunDef:
            return self._close_fun(t, env, renv)
        if cls is T.Pair:
            fst = self.ev(t.fst, env, renv)
            self.temps.append(fst)
            try:
                snd = self.ev(t.snd, env, renv)
                self.temps.append(snd)
                try:
                    region = self.alloc(t.rho, renv, 2)
                finally:
                    self.temps.pop()
            finally:
                self.temps.pop()
            return RPair(fst, snd, region)
        if cls is T.Select:
            pair = self.ev(t.pair, env, renv)
            if not isinstance(pair, RPair):
                raise RuntimeFault("#i of a non-pair value")
            if self.sanitize:
                self.san_check(pair)
            return pair.fst if t.index == 1 else pair.snd
        if cls is T.Cons:
            head = self.ev(t.head, env, renv)
            self.temps.append(head)
            try:
                tail = self.ev(t.tail, env, renv)
                self.temps.append(tail)
                try:
                    region = self.alloc(t.rho, renv, 2)
                finally:
                    self.temps.pop()
            finally:
                self.temps.pop()
            return RCons(head, tail, region)
        if cls is T.MkRef:
            init = self.ev(t.init, env, renv)
            self.temps.append(init)
            try:
                region = self.alloc(t.rho, renv, 1)
            finally:
                self.temps.pop()
            return RRef(init, region)
        if cls is T.Deref:
            ref = self.ev(t.ref, env, renv)
            if self.sanitize:
                self.san_check(ref)
                self.san_check(ref.contents)
            return ref.contents
        if cls is T.Assign:
            ref = self.ev(t.ref, env, renv)
            self.temps.append(ref)
            try:
                value = self.ev(t.value, env, renv)
            finally:
                self.temps.pop()
            if self.sanitize:
                self.san_check(ref)
                self.san_check(value)
            ref.contents = value
            self.collector.note_write(ref)
            return UNIT
        if cls is T.LetData:
            return self.ev(t.body, env, renv)
        if cls is T.DataCon:
            payload = None
            if t.arg is not None:
                payload = self.ev(t.arg, env, renv)
                self.temps.append(payload)
            try:
                region = self.alloc(t.rho, renv, 2)
            finally:
                if t.arg is not None:
                    self.temps.pop()
            return RData(t.conname, payload, region)
        if cls is T.Case:
            scrut = self.ev(t.scrutinee, env, renv)
            if self.sanitize:
                self.san_check(scrut)
            for br in t.branches:
                if br.conname is not None:
                    if not isinstance(scrut, RData):
                        raise RuntimeFault("case on a non-datatype value")
                    if br.conname != scrut.conname:
                        continue
                if br.binder is None:
                    return self.ev(br.body, env, renv)
                bound = scrut.payload if br.conname is not None else scrut
                saved = env.get(br.binder, _MISSING)
                env[br.binder] = bound
                try:
                    return self.ev(br.body, env, renv)
                finally:
                    if saved is _MISSING:
                        del env[br.binder]
                    else:
                        env[br.binder] = saved
            raise RuntimeFault(
                f"Match: no case branch for constructor {scrut.conname}"
            )
        if cls is T.LetExn:
            stamp = next(self._exn_stamps)
            key = _exn_key(t.exname)
            saved = env.get(key, _MISSING)
            env[key] = stamp
            try:
                return self.ev(t.body, env, renv)
            finally:
                if saved is _MISSING:
                    del env[key]
                else:
                    env[key] = saved
        if cls is T.Con:
            payload = UNIT
            if t.arg is not None:
                payload = self.ev(t.arg, env, renv)
            self.temps.append(payload)
            try:
                region = self.alloc(t.rho, renv, 2)
            finally:
                self.temps.pop()
            stamp = env[_exn_key(t.exname)]
            return RExn(stamp, t.exname, payload, region)
        if cls is T.Raise:
            exn = self.ev(t.exn, env, renv)
            raise MLRaise(exn)
        if cls is T.Handle:
            try:
                return self.ev(t.body, env, renv)
            except MLRaise as exc:
                stamp = env[_exn_key(t.exname)]
                if exc.value.stamp != stamp:
                    raise
                if t.binder is None:
                    return self.ev(t.handler, env, renv)
                saved = env.get(t.binder, _MISSING)
                env[t.binder] = exc.value.payload
                try:
                    return self.ev(t.handler, env, renv)
                finally:
                    if saved is _MISSING:
                        del env[t.binder]
                    else:
                        env[t.binder] = saved
        raise TypeError(f"ev: unknown term {cls.__name__}")

    # -- closures and calls ------------------------------------------------------------

    def _capture(self, node: T.Term, env: dict, renv: dict) -> tuple[dict, dict]:
        venv = {}
        for name in self.prep.free_vars[id(node)]:
            venv[name] = env[name]
        crenv = {}
        if not self.ml_mode:
            for rho in self.prep.free_regions[id(node)]:
                crenv[rho] = self.resolve(rho, renv)
        return venv, crenv

    def _close_lam(self, t: T.Lam, env: dict, renv: dict) -> RClos:
        venv, crenv = self._capture(t, env, renv)
        region = self.alloc(t.rho, renv, 1 + len(venv) + len(crenv))
        return RClos(t.param, t.body, venv, crenv, region)

    def _close_fun(self, t: T.FunDef, env: dict, renv: dict) -> RFunClos:
        venv, crenv = self._capture(t, env, renv)
        region = self.alloc(t.rho, renv, 1 + len(venv) + len(crenv))
        dropped = frozenset()
        if self.drop_regions is not None:
            dropped = self.drop_regions.dropped_indices_for(id(t))
        return RFunClos(t.fname, t.rparams, t.param, t.body, venv, crenv,
                        region, dropped)

    def _letregion(self, t: T.Letregion, env: dict, renv: dict):
        if self.ml_mode or not t.rhos:
            return self.ev(t.body, env, renv)
        self.stats.letregions += 1
        created: list[tuple[RegionVar, Region, object]] = []
        for rho in t.rhos:
            kind = INFINITE
            capacity = None
            if self.multiplicity is not None and self.multiplicity.is_finite(rho):
                kind = FINITE
                capacity = self.multiplicity.finite[rho]
            region = self.heap.new_region(rho.display(), kind, capacity)
            created.append((rho, region, renv.get(rho, _MISSING)))
            renv[rho] = region
        try:
            value = self.ev(t.body, env, renv)
        except BaseException:
            # Unwinding (an ML exception or a fault): pop the regions but
            # never inject a collection — the in-flight exception value is
            # not on the shadow stack.
            for rho, region, saved in reversed(created):
                self.heap.dealloc_region(region)
                if saved is _MISSING:
                    del renv[rho]
                else:
                    renv[rho] = saved
            raise
        # The letregion's result is still only a Python local here: root it
        # for the duration of the deallocations so a fault-plan-injected
        # collection at a dealloc point traces it (this is exactly where a
        # dangling pointer created by unsound region inference first
        # becomes observable).
        self.temps.append(value)
        try:
            for rho, region, saved in reversed(created):
                self.heap.dealloc_region(region)
                if saved is _MISSING:
                    del renv[rho]
                else:
                    renv[rho] = saved
                self.maybe_gc_at_dealloc()
        finally:
            self.temps.pop()
        return value

    def _rapp(self, t: T.RApp, env: dict, renv: dict) -> RClos:
        fn = self.ev(t.fn, env, renv)
        if not isinstance(fn, RFunClos):
            raise RuntimeFault("region application of a non-fun value")
        if self.sanitize:
            self.san_check(fn)
        self.stats.region_apps += 1
        self.temps.append(fn)
        try:
            call_renv = self._bind_regions(fn, t.rargs, renv)
            venv = dict(fn.venv)
            venv[fn.fname] = fn
            region = self.alloc(t.rho, renv, 1 + len(venv) + len(call_renv))
        finally:
            self.temps.pop()
        return RClos(fn.param, fn.body, venv, call_renv, region)

    def _bind_regions(self, fn: RFunClos, rargs: tuple, renv: dict) -> dict:
        call_renv = dict(fn.renv)
        for idx, (formal, actual) in enumerate(zip(fn.rparams, rargs)):
            if idx in fn.dropped:
                self.stats.dropped_region_passes += 1
                continue
            call_renv[formal] = self.resolve(actual, renv)
        return call_renv

    def _app(self, t: T.App, env: dict, renv: dict):
        if id(t) in self.prep.direct_calls:
            return self._direct_call(t, env, renv)
        fn = self.ev(t.fn, env, renv)
        self.temps.append(fn)
        try:
            arg = self.ev(t.arg, env, renv)
        finally:
            self.temps.pop()
        return self._invoke(fn, arg)

    def _direct_call(self, t: T.App, env: dict, renv: dict):
        """``(f [rhos] at r) arg`` without materializing the intermediate
        specialized closure."""
        rapp: T.RApp = t.fn  # type: ignore[assignment]
        fn = env[rapp.fn.name]  # type: ignore[union-attr]
        if not isinstance(fn, RFunClos):
            raise RuntimeFault("region application of a non-fun value")
        self.stats.direct_calls += 1
        arg = self.ev(t.arg, env, renv)
        if self.sanitize:
            self.san_check(fn)
            self.san_check(arg)
        self.temps.append(arg)
        try:
            call_renv = self._bind_regions(fn, rapp.rargs, renv)
        finally:
            self.temps.pop()
        call_env = dict(fn.venv)
        call_env[fn.fname] = fn
        call_env[fn.param] = arg
        return self._enter(fn.body, call_env, call_renv)

    def _invoke(self, fn, arg):
        if self.sanitize:
            self.san_check(fn)
            self.san_check(arg)
        if isinstance(fn, RClos):
            call_env = dict(fn.venv)
            call_env[fn.param] = arg
            return self._enter(fn.body, call_env, fn.renv)
        if isinstance(fn, RFunClos):
            # A fun used monomorphically (no region parameters).
            call_env = dict(fn.venv)
            call_env[fn.fname] = fn
            call_env[fn.param] = arg
            return self._enter(fn.body, call_env, fn.renv)
        raise RuntimeFault("application of a non-function value")

    def _enter(self, body: T.Term, call_env: dict, call_renv: dict):
        self.depth += 1
        if self.depth > self.flags.max_depth:
            self.depth -= 1
            raise InterpreterLimit(
                f"call depth exceeded ({self.flags.max_depth})", stats=self.stats
            )
        self.env_stack.append(call_env)
        try:
            return self.ev(body, call_env, dict(call_renv))
        finally:
            self.env_stack.pop()
            self.depth -= 1

    # -- primitives --------------------------------------------------------------------

    def _prim(self, t: T.Prim, env: dict, renv: dict):
        op = t.op
        args = []
        pushed = 0
        try:
            for a in t.args:
                v = self.ev(a, env, renv)
                args.append(v)
                self.temps.append(v)
                pushed += 1
            return self._apply_prim(op, args, t.rho, renv)
        finally:
            for _ in range(pushed):
                self.temps.pop()

    def _apply_prim(self, op: str, args: list, rho: Optional[RegionVar], renv: dict):
        if self.sanitize:
            for a in args:
                self.san_check(a)
        if op == "add":
            return args[0] + args[1]
        if op == "sub":
            return args[0] - args[1]
        if op == "mul":
            return args[0] * args[1]
        if op == "div":
            if args[1] == 0:
                raise RuntimeFault("Div: division by zero")
            return _sml_div(args[0], args[1])
        if op == "mod":
            if args[1] == 0:
                raise RuntimeFault("Mod: modulo by zero")
            return args[0] - _sml_div(args[0], args[1]) * args[1]
        if op == "neg":
            return -args[0]
        if op in ("lt", "le", "gt", "ge"):
            a, b = args
            ka = a.value if isinstance(a, (RStr, RReal)) else a
            kb = b.value if isinstance(b, (RStr, RReal)) else b
            if op == "lt":
                return ka < kb
            if op == "le":
                return ka <= kb
            if op == "gt":
                return ka > kb
            return ka >= kb
        if op == "eq":
            return structural_eq(args[0], args[1])
        if op == "ne":
            return not structural_eq(args[0], args[1])
        if op in ("radd", "rsub", "rmul", "rdiv"):
            a, b = args[0].value, args[1].value
            if op == "radd":
                out = a + b
            elif op == "rsub":
                out = a - b
            elif op == "rmul":
                out = a * b
            else:
                if b == 0.0:
                    raise RuntimeFault("Div: real division by zero")
                out = a / b
            region = self.alloc(rho, renv, 1)
            return RReal(out, region)
        if op in ("rneg", "sqrt", "rsin", "rcos", "ratan", "rexp", "rln", "rabs"):
            import math

            x = args[0].value
            if op == "rneg":
                out = -x
            elif op == "sqrt":
                out = math.sqrt(x)
            elif op == "rsin":
                out = math.sin(x)
            elif op == "rcos":
                out = math.cos(x)
            elif op == "ratan":
                out = math.atan(x)
            elif op == "rexp":
                out = math.exp(x)
            elif op == "rln":
                out = math.log(x)
            else:
                out = abs(x)
            region = self.alloc(rho, renv, 1)
            return RReal(out, region)
        if op == "real":
            region = self.alloc(rho, renv, 1)
            return RReal(float(args[0]), region)
        if op == "floor":
            import math

            return math.floor(args[0].value)
        if op == "round":
            return round(args[0].value)
        if op == "trunc":
            return int(args[0].value)
        if op == "concat":
            s = args[0].value + args[1].value
            region = self.alloc(rho, renv, 1 + (len(s) + 7) // 8)
            return RStr(s, region)
        if op == "size":
            return len(args[0].value)
        if op == "int_to_string":
            s = str(args[0]) if args[0] >= 0 else f"~{-args[0]}"
            region = self.alloc(rho, renv, 1 + (len(s) + 7) // 8)
            return RStr(s, region)
        if op == "real_to_string":
            s = real_to_sml_string(args[0].value)
            region = self.alloc(rho, renv, 1 + (len(s) + 7) // 8)
            return RStr(s, region)
        if op == "print":
            self.output.append(args[0].value)
            return UNIT
        if op == "not":
            return not args[0]
        if op == "null":
            return isinstance(args[0], Nil)
        if op == "hd":
            if isinstance(args[0], Nil):
                raise RuntimeFault("Empty: hd of nil")
            if self.sanitize:
                self.san_check(args[0])
            return args[0].head
        if op == "tl":
            if isinstance(args[0], Nil):
                raise RuntimeFault("Empty: tl of nil")
            if self.sanitize:
                self.san_check(args[0])
            return args[0].tail
        if op == "array":
            # array (n, init): n+1 words (header + slots) in the result
            # region.  The argument pair is rooted via temps, so the
            # allocation may collect without losing init.
            n, init = args[0].fst, args[0].snd
            if n < 0:
                raise RuntimeFault("Size: negative array length")
            region = self.alloc(rho, renv, 1 + n)
            return RArray([init] * n, region)
        if op == "asub":
            arr, i = args[0].fst, args[0].snd
            if self.sanitize:
                self.san_check(arr)
            if not 0 <= i < len(arr.slots):
                raise RuntimeFault(
                    f"Subscript: index {i} out of bounds for array of "
                    f"length {len(arr.slots)}"
                )
            return arr.slots[i]
        if op == "aupdate":
            arr, iv = args[0].fst, args[0].snd
            i, v = iv.fst, iv.snd
            if self.sanitize:
                self.san_check(arr)
                self.san_check(v)
            if not 0 <= i < len(arr.slots):
                raise RuntimeFault(
                    f"Subscript: index {i} out of bounds for array of "
                    f"length {len(arr.slots)}"
                )
            arr.slots[i] = v
            self.collector.note_write(arr)
            return UNIT
        if op == "alength":
            if self.sanitize:
                self.san_check(args[0])
            return len(args[0].slots)
        raise RuntimeFault(f"unknown primitive {op}")


def _sml_div(a: int, b: int) -> int:
    """SML div truncates towards negative infinity (like Python)."""
    return a // b


_MISSING = object()


def run_term(
    term: T.Term,
    strategy: Strategy,
    runtime: RuntimeFlags,
    multiplicity=None,
    drop_regions=None,
    *,
    code=None,
    prep=None,
) -> tuple[object, str, RunStats]:
    """Evaluate a region-annotated program; returns (value, stdout, stats).

    ``code``/``prep`` select the closure-compiled fast path: pass the
    result of :func:`repro.runtime.compile.compile_term` (and the
    :class:`Prepared` tables it was built against) to skip per-node
    dispatch.  Omitted, the tree-walking :meth:`Interp.ev` runs.
    """
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(min(1_000_000, runtime.max_depth * 10 + 10_000))
    interp = None
    try:
        interp = Interp(term, strategy, runtime, multiplicity, drop_regions,
                        prep=prep)
        value = interp.run(code=code)
        return value, "".join(interp.output), interp.stats
    except RecursionError as exc:
        # Deep non-tail MiniML recursion can exhaust *Python's* stack
        # before the interpreter's own depth counter (which only counts
        # MiniML calls) trips.  Surface it as the same resource-limit
        # error family, with whatever stats accumulated.
        raise InterpreterLimit(
            "Python recursion limit hit before the interpreter depth "
            f"limit ({runtime.max_depth}); the program nests too deeply "
            "for the host stack",
            stats=interp.stats if interp is not None else None,
        ) from exc
    finally:
        sys.setrecursionlimit(old_limit)

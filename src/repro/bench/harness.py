"""Measurement machinery for Figure 9.

Per program and per strategy we collect the analogues of the paper's
columns:

* ``real time``  — wall-clock seconds of interpretation (plus a
  deterministic step count, since a Python interpreter's wall clock is
  noisy);
* ``rss``        — peak live heap words of the simulated region heap;
* ``gc #``       — number of collections;

and the static columns:

* ``loc``  — lines of the MiniML port (excluding the prelude, like the
  paper excludes the Basis);
* ``fcns`` — spurious functions / total functions;
* ``inst`` — spurious-boxed instantiations / total tracked
  instantiations;
* ``diff`` — whether the ``rg`` and ``rg-`` region annotations differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..config import CompilerFlags, Strategy
from ..pipeline import CompiledProgram, compile_program
from ..runtime.values import show_value
from .registry import BENCHMARKS, benchmark_source

__all__ = ["Measurement", "Figure9Row", "measure", "static_counts", "figure9_row", "loc_of"]


@dataclass
class Measurement:
    strategy: Strategy
    value: str
    seconds: float
    steps: int
    peak_words: int
    gc_count: int
    letregions: int
    allocations: int
    gc_minor_count: int = 0
    allocated_words: int = 0
    compile_seconds: float = 0.0
    peak_pages: int = 0

    def to_dict(self) -> dict:
        """The machine-readable cell (see :mod:`repro.bench.export`)."""
        return {
            "value": self.value,
            "seconds": self.seconds,
            "compile_seconds": self.compile_seconds,
            "steps": self.steps,
            "peak_words": self.peak_words,
            "peak_pages": self.peak_pages,
            "gc_count": self.gc_count,
            "gc_minor_count": self.gc_minor_count,
            "allocations": self.allocations,
            "allocated_words": self.allocated_words,
            "letregions": self.letregions,
        }


@dataclass
class Figure9Row:
    name: str
    loc: int
    spurious_fcns: int
    total_fcns: int
    spurious_boxed_inst: int
    total_inst: int
    diff: bool
    measurements: dict = field(default_factory=dict)  # strategy value -> Measurement
    expected: str = ""
    correct: bool = True

    def cell(self, strategy: Strategy) -> Measurement:
        return self.measurements[strategy.value]


def loc_of(source: str) -> int:
    """Lines of code, excluding blanks and lines that are entirely
    comment.

    SML comments ``(* ... *)`` nest and may span lines; a line counts as
    code only if some non-whitespace character lies outside every
    comment.  Comment openers inside string literals do not open
    comments (``"(*"`` is a two-character string).
    """
    count = 0
    depth = 0  # comment nesting depth, carried across lines
    for line in source.splitlines():
        has_code = False
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            if depth == 0 and ch == '"':
                # A string literal is code; skip to its closing quote.
                has_code = True
                i += 1
                while i < n and line[i] != '"':
                    i += 2 if line[i] == "\\" else 1
                i += 1
                continue
            if ch == "(" and i + 1 < n and line[i + 1] == "*":
                depth += 1
                i += 2
                continue
            if depth > 0 and ch == "*" and i + 1 < n and line[i + 1] == ")":
                depth -= 1
                i += 2
                continue
            if depth == 0 and not ch.isspace():
                has_code = True
            i += 1
        if has_code:
            count += 1
    return count


def measure(
    source: str,
    strategy: Strategy,
    repeat: int = 1,
    flags: Optional[CompilerFlags] = None,
    cache: bool = True,
    backend: str = "closure",
    policy: Optional[str] = None,
) -> Measurement:
    """Compile once, run ``repeat`` times, report the best wall time.

    ``cache``/``backend`` pass straight through to
    :func:`~repro.pipeline.compile_program` and
    :meth:`~repro.pipeline.CompiledProgram.run`: a suite that measures
    every strategy of the same program re-parses it zero times with the
    cache on, and ``backend="tree"`` times the original walker.
    ``policy`` selects the collection policy (``RuntimeFlags.gc_policy``);
    every policy is value- and word-identical, so the interesting deltas
    are ``peak_pages`` and the GC counts."""
    flags = (flags or CompilerFlags()).with_strategy(strategy)
    prog = compile_program(source, flags=flags, cache=cache)
    overrides: dict = {}
    if policy is not None:
        overrides["gc_policy"] = policy
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = prog.run(backend=backend, **overrides)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    elapsed, result = best
    return Measurement(
        strategy=strategy,
        value=show_value(result.value),
        seconds=elapsed,
        steps=result.stats.steps,
        peak_words=result.stats.peak_words,
        gc_count=result.stats.gc_count,
        letregions=result.stats.letregions,
        allocations=result.stats.allocations,
        gc_minor_count=result.stats.gc_minor_count,
        allocated_words=result.stats.allocated_words,
        compile_seconds=prog.compile_seconds,
        peak_pages=result.stats.peak_pages,
    )


import re as _re


def _prelude_names() -> list:
    from ..frontend import ast as A
    from ..frontend.builtins import PRELUDE_SOURCE
    from ..frontend.parser import parse_program

    names = []
    for dec in parse_program(PRELUDE_SOURCE).decs:
        if isinstance(dec, A.FunDec):
            names.append(dec.name)
        elif isinstance(dec, A.ValDec) and isinstance(dec.pat, A.PVar):
            names.append(dec.pat.name)
    return names


def _program_part(term):
    """Strip the prelude's leading Let chain (and any wrapping letregion)
    so diffs compare only the user program, as the paper excludes the
    Basis."""
    from ..core import terms as T

    prelude = set(_prelude_names())
    while True:
        if isinstance(term, T.Letregion):
            term = term.body
            continue
        if isinstance(term, T.Let) and term.name in prelude:
            prelude.discard(term.name)
            term = term.body
            continue
        return term


def _canonical(term) -> str:
    """Pretty-print with region/effect/tyvar idents renamed by first
    occurrence, so the rg/rg- comparison ignores fresh-variable
    numbering differences."""
    from ..regions.pretty import pretty_program

    text = pretty_program(term, schemes=True)
    mapping: dict = {}

    def rename(match) -> str:
        token = match.group(0)
        if token not in mapping:
            kind = "r" if token[0] == "r" else ("e" if token[0] == "e" else "'t")
            mapping[token] = f"{kind}#{len(mapping)}"
        return mapping[token]

    return _re.sub(r"\b[re]\d+\b|'t\d+", rename, text)


def _fingerprint(prog: CompiledProgram) -> tuple:
    """A semantic fingerprint of the generated code's region behaviour:
    region live ranges show up as peak words and letregion/allocation
    counts.  The paper's `diff` column marks programs whose generated
    code differs between rg and rg- "in terms of longer region live
    ranges" — this is the executable form of that comparison."""
    result = prog.run()
    s = result.stats
    return (s.letregions, s.allocations, s.region_apps, s.peak_words, s.steps)


def static_counts(source: str, flags: Optional[CompilerFlags] = None) -> tuple:
    """(spurious fcns, total fcns, spurious-boxed inst, total inst, diff)
    for the user program, prelude excluded (as the paper excludes the
    Basis library from its counts)."""
    base = flags or CompilerFlags()
    rg = compile_program(source, flags=base.with_strategy(Strategy.RG))
    rg_minus = compile_program(source, flags=base.with_strategy(Strategy.RG_MINUS))
    baseline = compile_program("val it = 0", flags=base.with_strategy(Strategy.RG))
    try:
        diff = _fingerprint(rg) != _fingerprint(rg_minus)
    except Exception:
        # rg- may crash on the very programs where the difference matters.
        diff = True
    s, b = rg.spurious, baseline.spurious
    return (
        s.spurious_functions - b.spurious_functions,
        s.total_functions - b.total_functions,
        s.spurious_boxed_instantiations - b.spurious_boxed_instantiations,
        s.total_tyvar_instantiations - b.total_tyvar_instantiations,
        diff,
    )


def figure9_row(
    name: str,
    strategies: tuple = (Strategy.RG, Strategy.RG_MINUS, Strategy.R, Strategy.ML),
    repeat: int = 1,
    flags: Optional[CompilerFlags] = None,
) -> Figure9Row:
    """Produce one full row of Figure 9 for a registered benchmark."""
    bench = BENCHMARKS[name]
    source = benchmark_source(name)
    spur, total, sb_inst, t_inst, diff = static_counts(source, flags)
    row = Figure9Row(
        name=name,
        loc=loc_of(source),
        spurious_fcns=spur,
        total_fcns=total,
        spurious_boxed_inst=sb_inst,
        total_inst=t_inst,
        diff=diff,
        expected=bench.expected,
    )
    for strategy in strategies:
        m = measure(source, strategy, repeat=repeat, flags=flags)
        row.measurements[strategy.value] = m
        if m.value != bench.expected:
            row.correct = False
    return row

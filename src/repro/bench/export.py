"""Machine-readable benchmark export: the ``repro-bench`` entry point.

``repro-figure9`` renders the paper's table for humans;  this module
produces the same measurements as **data** — ``BENCH_figure9.json`` —
so that performance PRs can diff their numbers against a committed
baseline instead of eyeballing a text table.

Document schema (:data:`SCHEMA`, validated by :func:`validate_document`
and the CI smoke job)::

    {
      "schema": "repro-bench/v1",
      "suite": "figure9",
      "repeat": 1,
      "strategies": ["rg", "rg-", "r", "trivial", "ml"],
      "programs": {
        "fib": {
          "loc": 2,
          "expected": "2584",
          "strategies": {
            "rg": {"value": "2584", "ok": true, "seconds": 0.06,
                   "compile_seconds": 0.05, "steps": 831187,
                   "peak_words": 43, "peak_pages": 1,
                   "gc_count": 0, "gc_minor_count": 0,
                   "allocations": 6, "allocated_words": 18,
                   "letregions": 3},
            ...
          }
        }, ...
      }
    }

``seconds`` (best-of-``repeat`` wall clock) is machine-dependent noise;
``steps``/``peak_words``/``gc_count``/``allocations`` are deterministic
and are what trajectory diffs should compare.

``--backends`` additionally attaches a **backend column** to the
document: per-program best-of-N wall seconds under ``rg`` for each
requested evaluator, plus the bytecode-vs-closure speedup ratios and
their geometric mean.  This is the data behind docs/performance.md's
backend table and the perf-smoke CI gate::

    "backends": {
      "strategy": "rg",
      "repeat": 3,
      "names": ["closure", "bytecode"],
      "programs": {"fib": {"closure": 0.022, "bytecode": 0.011}, ...},
      "speedup": {"bytecode_vs_closure": {"fib": 2.08, ...,
                                          "geomean": 1.57}}
    }

``--policies`` attaches a **policy column**: per-program deterministic
heap behaviour under ``rg`` for each requested collection policy
(``repro.runtime.gc.POLICIES``).  Policies are bit-identical on values
and mutator-level word counts by construction, so the section records
exactly the page-level and schedule quantities where they legitimately
differ::

    "policies": {
      "strategy": "rg",
      "names": ["copying", "generational", "mark-compact"],
      "programs": {"life": {"copying": {"peak_words": ..., "peak_pages": ...,
                                        "gc_count": ..., "gc_minor_count": ...,
                                        "seconds": ...}, ...}, ...}
    }

Usage::

    repro-bench                               # all 28 programs x 5 strategies
    repro-bench --programs fib,life --repeat 1
    repro-bench --jobs 4                      # parallel across programs
    repro-bench --validate BENCH_figure9.json # schema-check an existing file
    repro-bench --no-cache --backend tree     # time the tree walker, uncached
    repro-bench --backends closure,bytecode   # attach the backend column
    repro-bench --policies copying,generational,mark-compact
                                              # attach the policy column

Exit codes: 0 success; 1 when any cell's value differs from the
registry's expected output (the file is still written) or when
``--validate`` fails; 2 on usage errors (unknown program/strategy).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Optional

from ..config import Strategy
from .harness import loc_of, measure
from .registry import BENCHMARKS, benchmark_source

__all__ = [
    "SCHEMA",
    "ALL_STRATEGIES",
    "ALL_BACKENDS",
    "backend_column",
    "policy_column",
    "bench_program",
    "build_document",
    "validate_document",
    "main",
]

SCHEMA = "repro-bench/v1"

#: The five Figure 9 strategies (rg, rg-, r, trivial, ml).
ALL_STRATEGIES: tuple[str, ...] = tuple(s.value for s in Strategy)

#: The three evaluators (docs/bytecode.md: three backends, one semantics).
ALL_BACKENDS: tuple[str, ...] = ("closure", "bytecode", "tree")

#: Required per-cell measurement fields.
CELL_FIELDS = frozenset(
    {
        "value",
        "ok",
        "seconds",
        "compile_seconds",
        "steps",
        "peak_words",
        "peak_pages",
        "gc_count",
        "gc_minor_count",
        "allocations",
        "allocated_words",
        "letregions",
    }
)


def bench_program(
    name: str,
    strategies: Iterable[str],
    repeat: int = 1,
    cache: bool = True,
    backend: str = "closure",
) -> dict:
    """Measure one program under each strategy; returns its row dict."""
    bench = BENCHMARKS[name]
    source = benchmark_source(name)
    cells: dict[str, dict] = {}
    for strategy in strategies:
        m = measure(source, Strategy(strategy), repeat=repeat, cache=cache, backend=backend)
        cell = m.to_dict()
        cell["ok"] = m.value == bench.expected
        cells[strategy] = cell
    return {
        "loc": loc_of(source),
        "expected": bench.expected,
        "strategies": cells,
    }


def backend_column(
    names: Iterable[str],
    backends: Iterable[str] = ("closure", "bytecode"),
    repeat: int = 3,
    cache: bool = True,
    log=None,
) -> dict:
    """Measure each program under ``rg`` once per backend and return the
    ``backends`` document section, including the bytecode-vs-closure
    speedup ratios when both are present.

    The column reports *hot* steady-state interpretation: per backend,
    one untimed training run first (it populates the compile cache,
    advances the specialization counters past the threshold, and
    installs the generated kernels), then best-of-``repeat`` timed runs.
    Training matters for short programs, whose bodies may need more than
    one run to cross ``RuntimeFlags.specialize`` entries.  The timed
    runs are interleaved round-robin across backends so a transient
    load spike on the host degrades every backend's sample pool equally
    instead of silently skewing one side of the ratio."""
    import math

    backends = tuple(backends)
    programs: dict[str, dict] = {}
    for name in sorted(set(names)):
        source = benchmark_source(name)
        for backend in backends:
            measure(source, Strategy.RG, repeat=1, cache=cache,
                    backend=backend)  # train: compile, profile, specialize
        row = {b: math.inf for b in backends}
        for _ in range(repeat):
            for backend in backends:
                run = measure(source, Strategy.RG, repeat=1, cache=cache,
                              backend=backend)
                row[backend] = min(row[backend], run.seconds)
        programs[name] = row
        if log:
            log(f"backends {name}: "
                + " ".join(f"{b}={row[b]:.3f}s" for b in backends))
    column = {
        "strategy": "rg",
        "repeat": repeat,
        "names": list(backends),
        "programs": programs,
    }
    if "closure" in backends and "bytecode" in backends:
        ratios = {
            name: row["closure"] / row["bytecode"]
            for name, row in programs.items()
        }
        ratios["geomean"] = math.exp(
            sum(math.log(r) for r in ratios.values()) / len(ratios)
        )
        column["speedup"] = {
            "bytecode_vs_closure": {k: round(v, 3) for k, v in ratios.items()}
        }
    return column


def policy_column(
    names: Iterable[str],
    policies: Optional[Iterable[str]] = None,
    cache: bool = True,
    log=None,
) -> dict:
    """Measure each program under ``rg`` once per collection policy and
    return the ``policies`` document section.

    One run per cell suffices: every reported quantity is deterministic
    (``seconds`` is attached for orientation but is noise).  A policy
    whose value diverges from the registry's expected output is a policy
    bug — the cell records ``ok`` so the CI gate can catch it."""
    from ..runtime.gc import POLICIES

    policies = tuple(policies) if policies is not None else tuple(sorted(POLICIES))
    programs: dict[str, dict] = {}
    for name in sorted(set(names)):
        bench = BENCHMARKS[name]
        source = benchmark_source(name)
        row: dict[str, dict] = {}
        for policy in policies:
            m = measure(source, Strategy.RG, cache=cache, policy=policy)
            row[policy] = {
                "ok": m.value == bench.expected,
                "peak_words": m.peak_words,
                "peak_pages": m.peak_pages,
                "gc_count": m.gc_count,
                "gc_minor_count": m.gc_minor_count,
                "seconds": m.seconds,
            }
        programs[name] = row
        if log:
            log(f"policies {name}: "
                + " ".join(f"{p}={row[p]['peak_pages']}pg" for p in policies))
    return {
        "strategy": "rg",
        "names": list(policies),
        "programs": programs,
    }


def document_from_rows(rows: Iterable, strategies: Iterable[str], repeat: int = 1) -> dict:
    """Convert :class:`~repro.bench.harness.Figure9Row` objects (which
    carry the static fcns/inst/diff columns too) into an export document.
    Used by ``repro-figure9 --json``."""
    programs: dict[str, dict] = {}
    for row in rows:
        cells: dict[str, dict] = {}
        for strategy, m in row.measurements.items():
            cell = m.to_dict()
            cell["ok"] = m.value == row.expected
            cells[strategy] = cell
        programs[row.name] = {
            "loc": row.loc,
            "expected": row.expected,
            "strategies": cells,
            "static": {
                "spurious_fcns": row.spurious_fcns,
                "total_fcns": row.total_fcns,
                "spurious_boxed_inst": row.spurious_boxed_inst,
                "total_inst": row.total_inst,
                "diff": row.diff,
            },
        }
    return {
        "schema": SCHEMA,
        "suite": "figure9",
        "repeat": repeat,
        "strategies": list(strategies),
        "programs": {name: programs[name] for name in sorted(programs)},
    }


def _worker(job: tuple) -> tuple[str, dict]:
    """Top-level so the worker pool's spawn context can pickle it."""
    name, strategies, repeat, cache, backend = job
    return name, bench_program(name, strategies, repeat, cache=cache, backend=backend)


def build_document(
    names: Iterable[str],
    strategies: Iterable[str] = ALL_STRATEGIES,
    repeat: int = 1,
    jobs: int = 1,
    log=None,
    cache: bool = True,
    backend: str = "closure",
) -> dict:
    """Run the suite (optionally in parallel across programs) and return
    the export document."""
    names = list(names)
    strategies = tuple(strategies)
    work = [(name, strategies, repeat, cache, backend) for name in names]
    rows: dict[str, dict] = {}
    if jobs > 1 and len(work) > 1:
        # The serving layer's crash-resilient pool (repro.server.pool)
        # doubles as the bench fan-out engine: a benchmark that kills its
        # worker surfaces as a WorkerError naming the job instead of
        # poisoning the whole batch.
        from ..server.pool import run_jobs

        for name, row in run_jobs(_worker, work, jobs=min(jobs, len(work))):
            if log:
                log(f"done {name}")
            rows[name] = row
    else:
        for job in work:
            name, row = _worker(job)
            if log:
                log(f"done {name}")
            rows[name] = row
    return {
        "schema": SCHEMA,
        "suite": "figure9",
        "repeat": repeat,
        "strategies": list(strategies),
        # Deterministic ordering for stable diffs.
        "programs": {name: rows[name] for name in sorted(rows)},
    }


def validate_document(
    doc: object,
    require_programs: Optional[Iterable[str]] = None,
    require_strategies: Optional[Iterable[str]] = None,
) -> list[str]:
    """Schema-check an export document; returns a list of problems
    (empty = valid).

    ``require_programs``/``require_strategies`` additionally demand
    coverage, e.g. ``require_programs=BENCHMARKS`` for a full Figure 9
    export.
    """
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if doc.get("suite") != "figure9":
        errors.append(f"suite is {doc.get('suite')!r}, expected 'figure9'")
    if not isinstance(doc.get("repeat"), int) or doc.get("repeat", 0) < 1:
        errors.append("repeat must be a positive integer")
    strategies = doc.get("strategies")
    if not isinstance(strategies, list) or not strategies:
        errors.append("strategies must be a non-empty list")
        strategies = []
    unknown = [s for s in strategies if s not in ALL_STRATEGIES]
    if unknown:
        errors.append(f"unknown strategies {unknown}")
    programs = doc.get("programs")
    if not isinstance(programs, dict):
        errors.append("programs must be an object")
        programs = {}
    for name, row in programs.items():
        where = f"programs[{name!r}]"
        if not isinstance(row, dict):
            errors.append(f"{where} is not an object")
            continue
        for key in ("loc", "expected", "strategies"):
            if key not in row:
                errors.append(f"{where} missing {key!r}")
        cells = row.get("strategies", {})
        if not isinstance(cells, dict):
            errors.append(f"{where}.strategies is not an object")
            continue
        for strategy in strategies:
            if strategy not in cells:
                errors.append(f"{where} missing strategy {strategy!r}")
        for strategy, cell in cells.items():
            if not isinstance(cell, dict):
                errors.append(f"{where}.strategies[{strategy!r}] is not an object")
                continue
            missing = CELL_FIELDS - set(cell)
            if missing:
                errors.append(
                    f"{where}.strategies[{strategy!r}] missing {sorted(missing)}"
                )
    if require_programs is not None:
        missing_programs = sorted(set(require_programs) - set(programs))
        if missing_programs:
            errors.append(f"missing programs {missing_programs}")
    if require_strategies is not None:
        missing_strats = sorted(set(require_strategies) - set(strategies))
        if missing_strats:
            errors.append(f"missing strategies {missing_strats}")
    return errors


def _names_arg(text: str) -> list[str]:
    return [n for n in text.split(",") if n]


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the Figure 9 suite and export machine-readable "
        "results (BENCH_figure9.json).",
    )
    parser.add_argument(
        "--programs",
        type=_names_arg,
        default=None,
        metavar="a,b,..",
        help="comma-separated benchmark names (default: all 28)",
    )
    parser.add_argument(
        "--strategies",
        type=_names_arg,
        default=None,
        metavar="s,s,..",
        help=f"comma-separated strategies (default: {','.join(ALL_STRATEGIES)})",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, help="timed runs per cell, best-of (default 1)"
    )
    parser.add_argument(
        "--out",
        default="BENCH_figure9.json",
        metavar="FILE",
        help="output path (default BENCH_figure9.json; - for stdout)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run programs in parallel with N worker processes",
    )
    parser.add_argument(
        "--validate",
        metavar="FILE",
        help="validate an existing export against the schema and exit",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the compile cache (recompile per strategy)",
    )
    parser.add_argument(
        "--backend",
        default="closure",
        choices=list(ALL_BACKENDS),
        help="evaluator to time (default: closure)",
    )
    parser.add_argument(
        "--backends",
        type=_names_arg,
        default=None,
        metavar="b,b,..",
        help="attach a backend-comparison column (rg only) measuring "
        "each listed evaluator, e.g. closure,bytecode",
    )
    parser.add_argument(
        "--policies",
        type=_names_arg,
        default=None,
        metavar="p,p,..",
        help="attach a policy-comparison column (rg only) measuring "
        "each listed collection policy, e.g. "
        "copying,generational,mark-compact",
    )
    parser.add_argument(
        "--backends-repeat",
        type=int,
        default=3,
        metavar="N",
        help="timed runs per backend cell, best-of (default 3 — the "
        "best of a warmed-up, specialized run)",
    )
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            with open(args.validate, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"repro-bench: cannot load {args.validate}: {exc}", file=sys.stderr)
            return 1
        errors = validate_document(doc)
        for err in errors:
            print(f"repro-bench: {err}", file=sys.stderr)
        if not errors:
            n_prog = len(doc.get("programs", {}))
            print(
                f"{args.validate}: valid {SCHEMA} "
                f"({n_prog} programs x {len(doc.get('strategies', []))} strategies)"
            )
        return 1 if errors else 0

    names = args.programs if args.programs is not None else sorted(BENCHMARKS)
    for name in names:
        if name not in BENCHMARKS:
            print(f"repro-bench: unknown benchmark {name!r}", file=sys.stderr)
            return 2
    strategies = args.strategies if args.strategies is not None else list(ALL_STRATEGIES)
    for strategy in strategies:
        if strategy not in ALL_STRATEGIES:
            print(f"repro-bench: unknown strategy {strategy!r}", file=sys.stderr)
            return 2
    if args.backends is not None:
        for backend in args.backends:
            if backend not in ALL_BACKENDS:
                print(f"repro-bench: unknown backend {backend!r}", file=sys.stderr)
                return 2
    if args.policies is not None:
        from ..runtime.gc import POLICIES

        for policy in args.policies:
            if policy not in POLICIES:
                print(f"repro-bench: unknown policy {policy!r}", file=sys.stderr)
                return 2

    def log(msg: str) -> None:
        print(f"repro-bench: {msg}", file=sys.stderr)

    doc = build_document(
        names,
        strategies,
        repeat=args.repeat,
        jobs=args.jobs,
        log=log,
        cache=not args.no_cache,
        backend=args.backend,
    )
    if args.backends is not None:
        doc["backends"] = backend_column(
            names,
            args.backends,
            repeat=args.backends_repeat,
            cache=not args.no_cache,
            log=log,
        )
    if args.policies is not None:
        doc["policies"] = policy_column(
            names,
            args.policies,
            cache=not args.no_cache,
            log=log,
        )
    if not args.no_cache and args.jobs <= 1:
        from ..cache import default_cache

        log(f"compile cache: {default_cache().stats.to_dict()}")
    payload = json.dumps(doc, indent=2, sort_keys=False) + "\n"
    if args.out == "-":
        sys.stdout.write(payload)
    else:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        log(f"wrote {args.out}")

    bad = [
        f"{name}/{strategy}"
        for name, row in doc["programs"].items()
        for strategy, cell in row["strategies"].items()
        if not cell["ok"]
    ]
    if bad:
        print(f"repro-bench: OUTPUT MISMATCH in {', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Regenerate the paper's Figure 9 as a text table.

Usage::

    python -m repro.bench.figure9 [--repeat N] [--only name,name] [--fast]

Columns mirror the paper: program, loc, fcns (spurious/total functions),
inst (spurious-boxed/total instantiations), diff, then per-strategy real
time (seconds), rss analogue (peak heap words) and gc counts.  ``ml`` is
our MLton stand-in (same interpreter, one conventional GC'd heap).
"""

from __future__ import annotations

import argparse
import sys

from ..config import Strategy
from .harness import Figure9Row, figure9_row
from .registry import BENCHMARKS

__all__ = ["main", "render_rows"]

_STRATS = (Strategy.RG, Strategy.RG_MINUS, Strategy.R, Strategy.ML)


def render_rows(rows: list, file=sys.stdout) -> None:
    header = (
        f"{'program':11s} {'loc':>4s} {'fcns':>8s} {'inst':>9s} {'diff':>4s} |"
        f" {'rg(s)':>7s} {'rg-(s)':>7s} {'r(s)':>7s} {'ml(s)':>7s} |"
        f" {'rg rss':>8s} {'rg- rss':>8s} {'r rss':>8s} |"
        f" {'rg gc':>5s} {'rg- gc':>6s} | ok"
    )
    print(header, file=file)
    print("-" * len(header), file=file)
    for row in rows:
        cells = {s.value: row.measurements.get(s.value) for s in _STRATS}

        def t(k):
            m = cells.get(k)
            return f"{m.seconds:7.3f}" if m else "      -"

        def w(k):
            m = cells.get(k)
            return f"{m.peak_words:8d}" if m else "       -"

        def g(k):
            m = cells.get(k)
            return f"{m.gc_count:5d}" if m else "    -"

        print(
            f"{row.name:11s} {row.loc:>4d} "
            f"{row.spurious_fcns:>3d}/{row.total_fcns:<4d} "
            f"{row.spurious_boxed_inst:>3d}/{row.total_inst:<5d} "
            f"{'yes' if row.diff else 'no':>4s} |"
            f" {t('rg')} {t('rg-')} {t('r')} {t('ml')} |"
            f" {w('rg')} {w('rg-')} {w('r')} |"
            f" {g('rg')} {g('rg-'):>6s} | {'yes' if row.correct else 'NO'}",
            file=file,
        )


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=1,
                        help="timed runs per cell (best-of)")
    parser.add_argument("--only", type=str, default="",
                        help="comma-separated benchmark names")
    parser.add_argument("--fast", action="store_true",
                        help="skip the ml column")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the rows (measurements + static "
                             "columns) as a repro-bench/v1 JSON export")
    args = parser.parse_args(argv)

    names = [n for n in args.only.split(",") if n] or sorted(BENCHMARKS)
    strategies = _STRATS[:-1] if args.fast else _STRATS

    rows: list[Figure9Row] = []
    for name in names:
        if name not in BENCHMARKS:
            print(f"unknown benchmark {name!r}", file=sys.stderr)
            return 2
        print(f"running {name} ...", file=sys.stderr)
        rows.append(figure9_row(name, strategies=strategies, repeat=args.repeat))
    render_rows(rows)
    if args.json:
        import json

        from .export import document_from_rows

        doc = document_from_rows(
            rows, strategies=[s.value for s in strategies], repeat=args.repeat
        )
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    bad = [r.name for r in rows if not r.correct]
    if bad:
        print(f"OUTPUT MISMATCH in: {', '.join(bad)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The Figure 9 benchmark harness: the 28 benchmark programs (23 Figure 9 ports plus 5 array/exception extension rows), the
per-strategy measurement machinery, and the table drivers."""

from .registry import BENCHMARKS, Benchmark, benchmark_source
from .harness import Figure9Row, measure, static_counts, figure9_row

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "Figure9Row",
    "benchmark_source",
    "figure9_row",
    "measure",
    "static_counts",
]

"""The Figure 9 benchmark harness: the 23 benchmark programs, the
per-strategy measurement machinery, and the table drivers."""

from .registry import BENCHMARKS, Benchmark, benchmark_source
from .harness import Figure9Row, measure, static_counts, figure9_row

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "Figure9Row",
    "benchmark_source",
    "figure9_row",
    "measure",
    "static_counts",
]

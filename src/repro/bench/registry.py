"""The benchmark registry: the 23 programs of the paper's Figure 9, as
MiniML ports (see DESIGN.md for the per-program mapping and scaling
notes), each with its expected result for correctness checking and its
paper-reported characteristics for EXPERIMENTS.md comparison — plus
five array/exception extension rows (``kb_exn``, ``matmul``,
``quicksort``, ``sieve``, ``queens_arr``) ported from the classic SML
benchmark shapes to exercise mutable arrays and parameterized-exception
control flow under the same bit-identity matrix.  For the extension
rows the ``paper_*`` fields describe the port itself (its loc and
spurious-function counts), not a Figure 9 column."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["Benchmark", "BENCHMARKS", "benchmark_source", "PROGRAMS_DIR"]

PROGRAMS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "programs"


@dataclass(frozen=True)
class Benchmark:
    """One Figure 9 row.

    ``expected`` is the rendered value of ``it`` (an output-correctness
    oracle shared by all strategies).  ``paper_loc`` is the size of the
    original SML program; ``paper_spurious`` the paper's `fcns` numerator;
    ``paper_diff`` the paper's `diff` column; ``gc_essential`` marks the
    rows where the paper's rss column shows reference tracing is
    essential (r much worse than rg)."""

    name: str
    expected: str
    paper_loc: int
    paper_spurious: int
    paper_total_fcns: int
    paper_diff: bool
    gc_essential: bool = False
    stack_only: bool = False


BENCHMARKS: dict[str, Benchmark] = {
    b.name: b
    for b in [
        Benchmark("dlx", "25840", 2841, 2, 149, True),
        Benchmark("barnes_hut", "162", 1245, 2, 140, True, gc_essential=True),
        Benchmark("fft", "1", 73, 0, 19, False),
        Benchmark("fib", "2584", 7, 0, 1, False, stack_only=True),
        Benchmark("kbc", "700", 679, 1, 90, True),
        Benchmark("lexgen", "12012", 1322, 0, 108, False),
        Benchmark("life", "9", 202, 0, 35, False),
        Benchmark("logic", "25", 351, 0, 22, False, gc_essential=True),
        Benchmark("mandelbrot", "67", 62, 0, 5, False),
        Benchmark("mlyacc", "~4455", 7385, 10, 966, True),
        Benchmark("mpuz", "6", 124, 0, 13, False),
        Benchmark("msort_rf", "31", 119, 0, 14, False),
        Benchmark("msort", "31", 113, 0, 13, False),
        Benchmark("nucleic", "2970", 3215, 1, 40, False, gc_essential=True),
        Benchmark("professor", "84", 282, 0, 57, False),
        Benchmark("ratio", "7", 620, 0, 54, False),
        Benchmark("ray", "176", 529, 1, 48, False),
        Benchmark("simple", "496", 1053, 15, 327, True),
        Benchmark("tak", "1", 12, 0, 2, False, stack_only=True),
        Benchmark("tsp", "310", 493, 0, 26, False),
        Benchmark("vliw", "180", 3681, 5, 563, True),
        Benchmark("zebra", "3", 313, 2, 50, True, gc_essential=True),
        Benchmark("zern", "~129", 605, 3, 103, True),
        # Extension rows (not Figure 9 columns): mutable arrays and
        # exception type variables.  kb_exn's normalize tracks its 'a in
        # delta (a spurious exception type variable, pinned to the
        # global effect) — rg- drops that Delta entry, but the emitted
        # code is identical, so the codegen diff column stays False.
        Benchmark("kb_exn", "32682", 33, 1, 13, False),
        Benchmark("matmul", "541904", 27, 1, 9, False),
        Benchmark("quicksort", "19934", 33, 0, 8, False),
        Benchmark("sieve", "168", 17, 0, 3, False),
        Benchmark("queens_arr", "40", 23, 0, 3, False),
    ]
}


def benchmark_source(name: str) -> str:
    """Read a benchmark program's MiniML source."""
    return (PROGRAMS_DIR / f"{name}.mml").read_text()

"""Region inference (paper Section 4): spreading, unification on region
and effect nodes, spurious-type-variable tracking, generalization,
letregion insertion, and freezing into the core term language — plus the
region-representation analyses (multiplicity, drop-regions)."""

from .infer import RegionInferenceOutput, infer_regions
from .multiplicity import MultiplicityReport, analyse_multiplicity
from .dropregions import DropRegionsReport, analyse_drop_regions

__all__ = [
    "RegionInferenceOutput",
    "infer_regions",
    "MultiplicityReport",
    "analyse_multiplicity",
    "DropRegionsReport",
    "analyse_drop_regions",
]

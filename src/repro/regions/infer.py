"""Region inference (paper Sections 4.1-4.3).

One elaboration pass over the Hindley-Milner-typed MiniML AST:

* **spreading** — every ML type occurrence is spread into a node-level
  region type with fresh region/effect nodes;
* **unification** — term constraints (application, branches, recursion)
  unify nodes; effects only grow;
* **GC-safety closure** — at every ``fn``/``fun``, the free region and
  effect variables of the types of captured identifiers are added to the
  function's arrow effect (the relation ``G``); type variables occurring
  in captured types but *not* in the function's own type are *spurious*
  and are associated with arrow effects (the paper's central mechanism);
* **generalization** — at ``fun`` (and ``val f = fn``) binders, nodes
  private to the function's type are quantified, together with the plain
  and spurious type variables of its HM scheme;
* **instantiation** — each polymorphic occurrence copies the scheme with
  fresh nodes and, for spurious type variables, adds the *coverage*
  constraint: all region/effect nodes of the instance type flow into the
  (copied) arrow effect of the variable — transitively registering type
  variables occurring in the instance as spurious themselves
  (Section 4.3, Figure 8).

The strategies differ here exactly as in the paper: ``rg-`` skips the
spurious-type-variable machinery (no ``Delta``, no coverage constraints),
``trivial`` allocates everything in the global region, and ``r``/``rg``
share the sound inference.

The pass produces a tree of *use-level* terms (``U``-nodes, defined here)
that reference mutable nodes; :mod:`repro.regions.freeze` converts them
into checked :mod:`repro.core.terms` with ``letregion`` placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..config import CompilerFlags, SpuriousMode, Strategy
from ..core.errors import RegionInferenceError
from ..frontend import ast as A
from ..frontend.builtins import BUILTINS, Builtin
from ..frontend.infer import InferenceResult, VarInstance
from ..frontend.mltypes import MLType, TCon, TVar, prune, zonk
from .nodes import EpsNode, NodeSupply, RhoNode, closure_of, unify_eps, unify_rho
from .ntypes import (
    NArray,
    NArrow,
    NBase,
    NBoxed,
    NExn,
    NList,
    NMu,
    NPair,
    NReal,
    NRef,
    NString,
    NVar,
    copy_nmu,
    frev_nodes,
    rho_nodes,
    spread,
    tyvars_of_nmu,
    unify_nmu,
)

__all__ = [
    "RegionInferenceOutput",
    "infer_regions",
    "FunInfo",
    "UseInfo",
    "SpuriousStats",
]


# ---------------------------------------------------------------------------
# Use-level terms (the elaboration IR)
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class UTerm:
    nmu: Optional[NMu] = field(default=None, init=False)
    eff: set = field(default_factory=set, init=False)
    #: region/effect nodes discharged (letregion-bound) right above this
    #: term — decided at scope exits during pass 1 (see ``_discharge``).
    local_atoms: set = field(default_factory=set, init=False)


@dataclass(eq=False)
class UVar(UTerm):
    name: str


@dataclass(eq=False)
class URecUse(UTerm):
    """A recursive occurrence of the function currently being inferred."""

    name: str
    info: "FunInfo"


@dataclass(eq=False)
class UPolyUse(UTerm):
    """An occurrence of a region-polymorphic binding: becomes an RApp."""

    name: str
    use: "UseInfo"


@dataclass(eq=False)
class UInt(UTerm):
    value: int


@dataclass(eq=False)
class UBool(UTerm):
    value: bool


@dataclass(eq=False)
class UUnit(UTerm):
    pass


@dataclass(eq=False)
class UString(UTerm):
    value: str
    rho: RhoNode


@dataclass(eq=False)
class UReal(UTerm):
    value: float
    rho: RhoNode


@dataclass(eq=False)
class UNil(UTerm):
    pass  # nmu carries the list type


@dataclass(eq=False)
class ULam(UTerm):
    param: str
    body: UTerm
    rho: RhoNode


@dataclass(eq=False)
class UFunDef(UTerm):
    info: "FunInfo"


@dataclass(eq=False)
class UApp(UTerm):
    fn: UTerm
    arg: UTerm


@dataclass(eq=False)
class ULet(UTerm):
    name: str
    rhs: UTerm
    body: UTerm


@dataclass(eq=False)
class UPair(UTerm):
    fst: UTerm
    snd: UTerm
    rho: RhoNode


@dataclass(eq=False)
class USelect(UTerm):
    index: int
    pair: UTerm


@dataclass(eq=False)
class UCons(UTerm):
    head: UTerm
    tail: UTerm
    rho: RhoNode


@dataclass(eq=False)
class UIf(UTerm):
    cond: UTerm
    then: UTerm
    els: UTerm


@dataclass(eq=False)
class UPrim(UTerm):
    op: str
    args: tuple
    rho: Optional[RhoNode] = None


@dataclass(eq=False)
class URef(UTerm):
    init: UTerm
    rho: RhoNode


@dataclass(eq=False)
class UDeref(UTerm):
    ref: UTerm


@dataclass(eq=False)
class UAssign(UTerm):
    ref: UTerm
    value: UTerm


@dataclass(eq=False)
class ULetData(UTerm):
    """A datatype declaration in scope for ``body``; ``info`` is the
    frontend's DataInfo (name, params, constructor payload ML types)."""

    info: object
    body: UTerm


@dataclass(eq=False)
class UDataCon(UTerm):
    dataname: str
    conname: str
    targs: tuple  # NMu instances for the datatype parameters
    arg: Optional[UTerm]
    rho: RhoNode


@dataclass(eq=False)
class UCase(UTerm):
    scrutinee: UTerm
    #: (conname | None, binder | None, body UTerm)
    branches: tuple


@dataclass(eq=False)
class ULetExn(UTerm):
    exname: str
    payload: Optional[NMu]
    body: UTerm


@dataclass(eq=False)
class UCon(UTerm):
    exname: str
    arg: Optional[UTerm]
    rho: RhoNode


@dataclass(eq=False)
class URaise(UTerm):
    exn: UTerm


@dataclass(eq=False)
class UHandle(UTerm):
    body: UTerm
    exname: str
    binder: Optional[str]
    handler: UTerm


def u_fpv(t: UTerm, bound: frozenset = frozenset(), out: Optional[set] = None) -> set:
    """Free program variables of a use-level term."""
    if out is None:
        out = set()
    if isinstance(t, (UVar, URecUse, UPolyUse)):
        if t.name not in bound:
            out.add(t.name)
    elif isinstance(t, ULam):
        u_fpv(t.body, bound | {t.param}, out)
    elif isinstance(t, UFunDef):
        u_fpv(t.info.body, bound | {t.info.fname, t.info.param}, out)
    elif isinstance(t, ULet):
        u_fpv(t.rhs, bound, out)
        u_fpv(t.body, bound | {t.name}, out)
    elif isinstance(t, UApp):
        u_fpv(t.fn, bound, out)
        u_fpv(t.arg, bound, out)
    elif isinstance(t, UPair):
        u_fpv(t.fst, bound, out)
        u_fpv(t.snd, bound, out)
    elif isinstance(t, USelect):
        u_fpv(t.pair, bound, out)
    elif isinstance(t, UCons):
        u_fpv(t.head, bound, out)
        u_fpv(t.tail, bound, out)
    elif isinstance(t, UIf):
        u_fpv(t.cond, bound, out)
        u_fpv(t.then, bound, out)
        u_fpv(t.els, bound, out)
    elif isinstance(t, UPrim):
        for a in t.args:
            u_fpv(a, bound, out)
    elif isinstance(t, URef):
        u_fpv(t.init, bound, out)
    elif isinstance(t, UDeref):
        u_fpv(t.ref, bound, out)
    elif isinstance(t, UAssign):
        u_fpv(t.ref, bound, out)
        u_fpv(t.value, bound, out)
    elif isinstance(t, ULetData):
        u_fpv(t.body, bound, out)
    elif isinstance(t, UDataCon):
        if t.arg is not None:
            u_fpv(t.arg, bound, out)
    elif isinstance(t, UCase):
        u_fpv(t.scrutinee, bound, out)
        for conname, binder, body in t.branches:
            inner = bound | {binder} if binder else bound
            u_fpv(body, inner, out)
    elif isinstance(t, ULetExn):
        u_fpv(t.body, bound, out)
    elif isinstance(t, UCon):
        if t.arg is not None:
            u_fpv(t.arg, bound, out)
    elif isinstance(t, URaise):
        u_fpv(t.exn, bound, out)
    elif isinstance(t, UHandle):
        u_fpv(t.body, bound, out)
        inner = bound | {t.binder} if t.binder else bound
        u_fpv(t.handler, inner, out)
    return out


# ---------------------------------------------------------------------------
# Scheme-level bookkeeping
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class FunInfo:
    """Everything region inference knows about one function binder."""

    fname: str
    param: str
    rho: RhoNode                       # where the closure lives
    arrow: NBoxed                      # the (mono) arrow type; scheme body
    body: UTerm = None                 # set after body inference
    rvars: list = field(default_factory=list)   # generalized RhoNodes
    evars: list = field(default_factory=list)   # generalized EpsNodes
    tvars: list = field(default_factory=list)   # plain bound ML TVars
    delta: dict = field(default_factory=dict)   # spurious: TVar -> EpsNode
    hm_qvars: tuple = ()
    recursive: bool = False

    @property
    def eps_arrow(self) -> EpsNode:
        return self.arrow.tau.eps

    def is_poly(self) -> bool:
        return bool(self.rvars or self.evars or self.tvars or self.delta)


@dataclass(eq=False)
class UseInfo:
    """One instantiation of a polymorphic binding (becomes an RApp)."""

    info: FunInfo
    rho_use: RhoNode                   # where the instantiated closure lives
    rho_map: dict                      # bound RhoNode -> fresh RhoNode
    eps_map: dict                      # bound EpsNode -> fresh EpsNode
    ty_map: dict                       # ML TVar -> instance NMu
    arrow: NBoxed                      # the instantiated arrow (at rho_use)


@dataclass
class SpuriousStats:
    """The static counters behind Figure 9's `fcns` and `inst` columns."""

    total_functions: int = 0
    spurious_functions: int = 0
    total_tyvar_instantiations: int = 0
    spurious_boxed_instantiations: int = 0
    spurious_tyvars: int = 0
    spurious_function_names: list = field(default_factory=list)


# Environment entries: a plain (mono) binding, the function being
# inferred (recursion), a generalized function, or an exception.
@dataclass(eq=False)
class MonoBind:
    nmu: NMu


@dataclass(eq=False)
class RecBind:
    info: FunInfo


@dataclass(eq=False)
class PolyBind:
    info: FunInfo


@dataclass(eq=False)
class ExnBind:
    payload: Optional[NMu]


EnvEntry = Union[MonoBind, RecBind, PolyBind, ExnBind]


@dataclass
class RegionInferenceOutput:
    """Pass-1 output handed to the freezing phase."""

    root: UTerm
    supply: NodeSupply
    flags: CompilerFlags
    stats: SpuriousStats
    top_bindings: dict  # name -> EnvEntry (for examples/pretty printing)


# ---------------------------------------------------------------------------
# The inference engine
# ---------------------------------------------------------------------------


class _RegionInferencer:
    def __init__(self, infres: InferenceResult, flags: CompilerFlags) -> None:
        self.infres = infres
        self.flags = flags
        self.track_spurious = flags.strategy.tracks_spurious
        # The ML stand-in ignores regions at run time, so the trivial
        # annotation (everything global) is the honest one for it too.
        self.supply = NodeSupply(
            trivial=flags.strategy in (Strategy.TRIVIAL, Strategy.ML)
        )
        self.level = 0
        self.stats = SpuriousStats()
        #: spurious registry: ML TVar -> its arrow-effect node
        self.spurious_eps: dict = {}
        #: HM qvar -> the level at which its binder generalizes
        self.qvar_level: dict = {}
        #: HM qvar -> IDENTIFY-mode effect node (the enclosing lambda's arrow)
        self._warned = []
        self._tmp_counter = 0

    # -- type plumbing ----------------------------------------------------------

    def type_of(self, node: A.Exp) -> MLType:
        return zonk(self.infres.node_type[id(node)])

    def spread_type(self, t: MLType) -> NMu:
        return spread(t, self.supply, self.level)

    def spread_node(self, node: A.Exp) -> NMu:
        return self.spread_type(self.type_of(node))

    # -- scoping and letregion discharge ------------------------------------------

    def _in_scope(self, env: dict, extra_nmus: tuple, fn) -> UTerm:
        """Run ``fn`` one scope level deeper, then discharge the region and
        effect nodes that are private to the resulting sub-term (the
        letregion-insertion decision of Section 4.1's fixpoint phase)."""
        entry_level = self.level
        self.level += 1
        term = fn()
        self.level -= 1
        self._discharge(term, env, extra_nmus, entry_level)
        # Whatever escapes the scope (through the result type or the
        # residual effect) now belongs to the enclosing level: without
        # this demotion a later binder could quantify a node that is
        # still visible in the environment.
        escaping = set(closure_of(frev_nodes(term.nmu))) if term.nmu is not None else set()
        escaping |= set(closure_of(term.eff))
        for atom in escaping:
            atom.level = min(atom.level, entry_level)
        return term

    def _discharge(self, term: UTerm, env: dict, extra_nmus: tuple, entry_level: int) -> None:
        visible_roots: set = set()
        for name in u_fpv(term):
            entry = env.get(name)
            if entry is None or isinstance(entry, ExnBind):
                continue
            if isinstance(entry, MonoBind):
                visible_roots |= frev_nodes(entry.nmu)
            else:
                fi = entry.info
                visible_roots |= frev_nodes(fi.arrow)
                visible_roots.add(fi.rho.find())
                for eps in fi.delta.values():
                    visible_roots.add(eps.find())
        if term.nmu is not None:
            visible_roots |= frev_nodes(term.nmu)
        for nm in extra_nmus:
            if nm is not None:
                visible_roots |= frev_nodes(nm)
        visible = closure_of(visible_roots)
        local: set = set()
        for atom in closure_of(term.eff):
            a = atom.find()
            if a.top or a.generalized or a.letbound:
                continue
            if a.level <= entry_level:
                continue
            if a in visible:
                continue
            local.add(a)
        for a in local:
            a.letbound = True
        if local:
            term.local_atoms |= local
            term.eff = set(closure_of(term.eff)) - local

    # -- entry -------------------------------------------------------------------

    def run(self) -> RegionInferenceOutput:
        env: dict[str, EnvEntry] = {}
        box: dict = {}

        def top() -> UTerm:
            root, out_env = self._decs(self.infres.program.decs, env)
            box["env"] = out_env
            return root

        root = self._in_scope(env, (), top)
        return RegionInferenceOutput(root, self.supply, self.flags, self.stats, box["env"])

    def _decs(self, decs: tuple, env: dict) -> tuple[UTerm, dict]:
        """Elaborate a declaration sequence into nested lets whose body is
        the final `it` binding (or unit)."""
        if not decs:
            result = UVar("it") if "it" in env else UUnit()
            if isinstance(result, UVar):
                entry = env["it"]
                if isinstance(entry, MonoBind):
                    result.nmu = entry.nmu
                else:
                    # `it` bound to a function: reference via use.
                    return self._final_it(env), env
            else:
                result.nmu = NBase("unit")
            return result, env
        head, rest = decs[0], decs[1:]
        if isinstance(head, A.ValDec):
            return self._val_dec(head, rest, env)
        if isinstance(head, A.FunDec):
            return self._fun_dec(head, rest, env)
        if isinstance(head, A.ExnDec):
            return self._exn_dec(head, rest, env)
        if isinstance(head, A.DatatypeDec):
            box: dict = {}

            def rest_fn():
                body, out_env = self._decs(rest, env)
                box["env"] = out_env
                return body

            term = self._datatype_dec_u(head, rest_fn)
            return term, box["env"]
        raise RegionInferenceError(f"unknown declaration {head!r}")

    def _final_it(self, env: dict) -> UTerm:
        entry = env["it"]
        assert isinstance(entry, (PolyBind, RecBind))
        term = self._use_binding("it", entry)
        return term

    # -- declarations ----------------------------------------------------------------

    def _val_dec(self, dec: A.ValDec, rest: tuple, env: dict) -> tuple[UTerm, dict]:
        rhs_ast = _strip_annot(dec.rhs)
        if isinstance(rhs_ast, A.EFn) and isinstance(dec.pat, A.PVar):
            scheme = self.infres.binding_scheme[id(dec)]
            if scheme.qvars or True:
                # Treat like a (non-recursive) fun binding: region-generalize.
                return self._function_binding(
                    dec.pat.name, rhs_ast.param, rhs_ast.body, dec, rest, env,
                    recursive_name=None,
                )
        rhs = self._in_scope(env, (), lambda: self.exp(dec.rhs, env))
        return self._bind_pattern_let(dec.pat, rhs, rest, env)

    def _fun_dec(self, dec: A.FunDec, rest: tuple, env: dict) -> tuple[UTerm, dict]:
        # Curried parameters: fun f p1 p2 ... = e  ==  fun f p1 = fn p2 => e
        body: A.Exp = dec.body
        for p in reversed(dec.params[1:]):
            fn = A.EFn(p, body, line=dec.line, col=dec.col)
            # The inner lambdas need recorded types: reconstruct from the
            # function's ML type by peeling arrows.
            self._synthesize_fn_type(fn, dec, len(dec.params))
            body = fn
        return self._function_binding(
            dec.name, dec.params[0], body, dec, rest, env, recursive_name=dec.name
        )

    def _synthesize_fn_type(self, fn: A.EFn, dec: A.FunDec, arity: int) -> None:
        # Types for synthesized curried lambdas are filled in lazily in
        # `exp` via _curried_types; nothing to do here (placeholder kept
        # for clarity).
        return None

    def _payload_nmu(self, info, conname: str, targ_map: dict, instance) -> Optional[NMu]:
        """The node-level payload type of ``conname`` at a datatype
        instance: the uniform representation puts every concrete boxed
        component in the instance's region; parameters map through
        ``targ_map``; recursive occurrences are the instance itself."""
        from .ntypes import NData

        payload_ml = info.constructors[conname]
        if payload_ml is None:
            return None
        spine = instance.rho

        def conv(t: MLType) -> NMu:
            t = prune(t)
            if isinstance(t, TVar):
                mapped = targ_map.get(t)
                return mapped if mapped is not None else NVar(t)
            assert isinstance(t, TCon)
            if t.name in ("int", "bool", "unit"):
                return NBase(t.name)
            if t.name == "string":
                return NBoxed(NString(), spine)
            if t.name == "real":
                return NBoxed(NReal(), spine)
            if t.name == "*":
                return NBoxed(NPair(conv(t.args[0]), conv(t.args[1])), spine)
            if t.name == "list":
                return NBoxed(NList(conv(t.args[0])), spine)
            if t.name == "ref":
                return NBoxed(NRef(conv(t.args[0])), spine)
            if t.name == "array":
                return NBoxed(NArray(conv(t.args[0])), spine)
            if t.name in ("->", "exn"):
                raise RegionInferenceError(
                    f"constructor {conname} of {info.name}: {t.name} types in "
                    "constructor payloads are not supported (wrap them in a "
                    "type parameter)"
                )
            if t.name == info.name:
                # regular recursion: the args must be exactly the params
                for arg, param in zip(t.args, info.params):
                    if prune(arg) is not prune(param):
                        raise RegionInferenceError(
                            f"datatype {info.name}: non-regular recursion is "
                            "not supported"
                        )
                return instance
            return NBoxed(
                NData(t.name, tuple(conv(a) for a in t.args)), spine
            )

        return conv(payload_ml)

    def _datatype_dec_u(self, dec: "A.DatatypeDec", rest_fn) -> UTerm:
        info = self.infres.datatypes[dec.name]
        body = rest_fn()
        t = ULetData(info, body)
        t.nmu = body.nmu
        t.eff = set(body.eff)
        return t

    def _data_con_value(self, e: A.EVar, env: dict) -> UTerm:
        """A datatype constructor used as a value."""
        from .ntypes import NData

        info, conname, _mapping = self.infres.data_con_use[id(e)]
        nmu = self.spread_node(e)
        if info.constructors[conname] is None:
            # nullary: the node type is the datatype instance itself
            assert isinstance(nmu, NBoxed) and isinstance(nmu.tau, NData)
            t = UDataCon(info.name, conname, nmu.tau.targs, None, nmu.rho)
            t.nmu = nmu
            t.eff = {nmu.rho.find()}
            return t
        # unary constructor as a first-class function: eta-expand
        assert isinstance(nmu, NBoxed) and isinstance(nmu.tau, NArrow)
        data_inst = nmu.tau.cod
        assert isinstance(data_inst, NBoxed) and isinstance(data_inst.tau, NData)
        targ_map = dict(zip(info.params, data_inst.tau.targs))
        payload = self._payload_nmu(info, conname, targ_map, data_inst)
        unify_nmu(nmu.tau.dom, payload)
        x = self._fresh_name("k")
        arg = _var(x, payload)
        con = UDataCon(info.name, conname, data_inst.tau.targs, arg, data_inst.rho)
        con.nmu = data_inst
        con.eff = {data_inst.rho.find()}
        nmu.tau.eps.add(con.eff)
        lam = ULam(x, con, nmu.rho)
        lam.nmu = nmu
        lam.eff = {nmu.rho.find()}
        return lam

    def _data_con_apply(self, e: A.EApp, fn_ast: A.EVar, env: dict) -> UTerm:
        from .ntypes import NData

        info, conname, _mapping = self.infres.data_con_use[id(fn_ast)]
        arg = self.exp(e.arg, env)
        result = self.spread_node(e)
        assert isinstance(result, NBoxed) and isinstance(result.tau, NData)
        targ_map = dict(zip(info.params, result.tau.targs))
        payload = self._payload_nmu(info, conname, targ_map, result)
        unify_nmu(arg.nmu, payload)
        t = UDataCon(info.name, conname, result.tau.targs, arg, result.rho)
        t.nmu = result
        t.eff = arg.eff | {result.rho.find()}
        return t

    def _case_u(self, e: "A.ECase", env: dict) -> UTerm:
        from .ntypes import NData

        scrut = self.exp(e.scrutinee, env)
        result_nmu = self.spread_node(e)
        branches = []
        eff = set(scrut.eff)
        if isinstance(scrut.nmu, NBoxed):
            eff.add(scrut.nmu.rho.find())
        for br in e.branches:
            inner_env = dict(env)
            rec = self.infres.case_branch.get(id(br))
            binder: Optional[str] = None
            wrap = None
            if rec is not None:
                info, conname, _mapping = rec
                if not (isinstance(scrut.nmu, NBoxed)
                        and isinstance(scrut.nmu.tau, NData)):
                    raise RegionInferenceError("case on a non-datatype value")
                targ_map = dict(zip(info.params, scrut.nmu.tau.targs))
                payload = self._payload_nmu(info, conname, targ_map, scrut.nmu)
                if payload is not None:
                    binder, wrap = self._pattern_binder(br.pat, payload, inner_env)
            else:
                conname = None
                if br.conname is not None:
                    binder = br.conname
                    inner_env[binder] = MonoBind(scrut.nmu)
                elif isinstance(br.pat, A.PVar):
                    binder = br.pat.name
                    inner_env[binder] = MonoBind(scrut.nmu)
                elif br.pat is not None and not isinstance(br.pat, A.PWild):
                    binder, wrap = self._pattern_binder(br.pat, scrut.nmu, inner_env)

            def body_fn(br=br, inner_env=inner_env, wrap=wrap):
                b = self.exp(br.body, inner_env)
                return b

            body = self._in_scope(inner_env, (), body_fn)
            if wrap is not None:
                body = wrap(body)
            unify_nmu(body.nmu, result_nmu)
            eff |= body.eff
            branches.append((conname, binder, body))
        t = UCase(scrut, tuple(branches))
        t.nmu = result_nmu
        t.eff = eff
        return t

    def _exn_dec(self, dec: A.ExnDec, rest: tuple, env: dict) -> tuple[UTerm, dict]:
        payload_ml = self.infres.exn_payload[id(dec)]
        payload = None
        if payload_ml is not None:
            payload = self.spread_type(zonk(payload_ml))
            self._pin_exception_payload(payload)
        inner_env = dict(env)
        inner_env[dec.name] = ExnBind(payload)
        body, out_env = self._decs(rest, inner_env)
        term = ULetExn(dec.name, payload, body)
        term.nmu = body.nmu
        term.eff = set(body.eff)
        return term, out_env

    def _pin_exception_payload(self, payload: NMu) -> None:
        """Section 4.4: every region of an exception payload type must be
        top-level, and its type variables are spurious, pinned to the
        global effect.  ``rg-`` skips the type-variable part (that is the
        unsoundness the section describes); pinning the *regions* is done
        in all region strategies since exception values escape
        dynamically."""
        for atom in frev_nodes(payload):
            if isinstance(atom, RhoNode):
                unify_rho(atom, self.supply.rho_top)
            else:
                unify_eps(atom, self.supply.eps_top)
        if self.track_spurious:
            for tv in tyvars_of_nmu(payload):
                eps = self._spurious_eps_for(tv)
                if eps is not None:
                    unify_eps(eps, self.supply.eps_top)

    # -- function binders --------------------------------------------------------------

    def _generalize(self, info: FunInfo) -> None:
        """Quantify the region/effect nodes private to the function."""
        outer = self.level
        reachable = set(frev_nodes(info.arrow))
        # Spurious effect nodes of this binder's qvars are part of the
        # scheme even when unreachable from the type proper.
        delta: dict = {}
        tvars: list = []
        for q in info.hm_qvars:
            eps = self.spurious_eps.get(q.ident)
            if eps is not None and self.track_spurious:
                eps = eps.find()
                delta[q] = eps
                reachable |= closure_of([eps])
                self.stats.spurious_tyvars += 1
            else:
                tvars.append(q)
        # Close through latent sets so bound effects' contents are visible.
        reachable = set(closure_of(reachable))
        rvars: list = []
        evars: list = []
        for node in sorted(reachable, key=lambda n: n.ident):
            if node.top or node.generalized or node.letbound:
                continue
            if node.level > outer:
                node.generalized = True
                if isinstance(node, RhoNode):
                    rvars.append(node)
                else:
                    evars.append(node)
        info.rvars = rvars
        info.evars = evars
        info.tvars = tvars
        info.delta = delta

    def _gc_closure(
        self,
        body: UTerm,
        params: frozenset,
        fn_nmu: NBoxed,
        env: dict,
        eps_arrow: EpsNode,
    ) -> None:
        """Enforce the relation ``G`` of Section 3.7: the type of every
        captured identifier must be contained in ``frev`` of the
        function's own type.

        Only the atoms *missing* from the function type are added to its
        arrow effect — containment is already satisfied for regions that
        occur in the type proper.  This matches the pre-paper rules of
        [45, p.50] and [13] exactly, and is precisely why those rules are
        unsound for polymorphism: a region reachable only through a type
        variable (Figure 1's ``rho`` inside ``gamma := (string, rho)``)
        contributes nothing here.  The paper's fix is the type-variable
        part below: spurious type variables get arrow-effect handles that
        *are* added to the latent effect, and instantiation coverage
        later forces the instance regions through them.  ``rg-`` skips
        that part and is exactly as unsound as its MLKit namesake.
        """
        own_visible = closure_of(frev_nodes(fn_nmu))
        own_tyvars = tyvars_of_nmu(fn_nmu)
        free = u_fpv(body) - params
        for y in sorted(free):
            entry = env.get(y)
            if entry is None or isinstance(entry, ExnBind):
                continue
            if isinstance(entry, MonoBind):
                ty = entry.nmu
                atoms = set(frev_nodes(ty))
                tyvars = tyvars_of_nmu(ty)
            else:
                fi = entry.info
                atoms = {
                    a for a in frev_nodes(fi.arrow)
                    if not a.find().generalized
                } | {fi.rho.find()}
                # A delta-bound type variable is discharged at
                # instantiation, but its arrow-effect handle survives the
                # scheme when it is not generalized — exception type
                # variables are pinned to the global effect (Section 4.4)
                # — and scheme containment then demands it be visible in
                # the capturing function's type.
                for d_eps in fi.delta.values():
                    if not d_eps.find().generalized:
                        atoms.add(d_eps.find())
                tyvars = {
                    tv for tv in tyvars_of_nmu(fi.arrow)
                    if tv not in set(fi.tvars) | set(fi.delta)
                }
            missing = {
                a for a in closure_of(atoms)
                if a not in own_visible and not a.find().generalized
            }
            eps_arrow.add(missing)
            if not self.track_spurious:
                continue
            for tv in tyvars:
                if tv in own_tyvars:
                    continue  # visible in the function's own type: lenient
                eps = self._spurious_eps_for(tv)
                if eps is not None:
                    eps_arrow.add([eps.find()])

    def _spurious_eps_for(self, tv: TVar) -> Optional[EpsNode]:
        """The arrow-effect node tracking a spurious type variable,
        created on demand at its binder's level."""
        tv = prune(tv)
        if not isinstance(tv, TVar):
            return None
        existing = self.spurious_eps.get(tv.ident)
        if existing is not None:
            return existing.find()
        owner_level = self.qvar_level.get(tv.ident)
        if owner_level is None:
            # A phantom or a variable from an outer, already-generalized
            # binder: pin to the global effect (sound, conservative).
            owner_level = 0
        if self.flags.spurious_mode is SpuriousMode.IDENTIFY:
            # Scheme (3): identify with the nearest enclosing arrow effect.
            # We approximate the paper's choice by creating the node at the
            # owner level and unifying it with the arrow it first appears
            # in; the caller adds it to that arrow's latent set either way.
            eps = EpsNode(self.supply._counter.__next__(), owner_level)
        else:
            eps = EpsNode(self.supply._counter.__next__(), owner_level)
        if self.supply.trivial:
            eps = self.supply.eps_top
        self.spurious_eps[tv.ident] = eps
        return eps

    # -- pattern binding ----------------------------------------------------------------

    def _fresh_name(self, base: str) -> str:
        self._tmp_counter += 1
        return f"__{base}{self._tmp_counter}"

    def _pattern_binder(self, pat: A.Pat, nmu: NMu, env: dict):
        """Bind ``pat`` against ``nmu`` in ``env``.

        Returns ``(param_name, wrap)`` where ``wrap`` (or ``None``) wraps
        the function body with the projections a tuple pattern needs.
        """
        if isinstance(pat, A.PVar):
            env[pat.name] = MonoBind(nmu)
            return pat.name, None
        if isinstance(pat, A.PWild):
            return self._fresh_name("w"), None
        if isinstance(pat, A.PTuple):
            if not pat.elems:
                return self._fresh_name("u"), None
            tmp = self._fresh_name("p")
            env[tmp] = MonoBind(nmu)
            bindings: list[tuple[str, UTerm]] = []
            self._tuple_bindings(pat, UVar(tmp), nmu, env, bindings)

            def wrap(body: UTerm) -> UTerm:
                out = body
                for bname, bterm in reversed(bindings):
                    let = ULet(bname, bterm, out)
                    let.nmu = out.nmu
                    let.eff = bterm.eff | out.eff
                    out = let
                return out

            return tmp, wrap
        raise RegionInferenceError(f"unsupported pattern {pat!r}")

    def _tuple_bindings(
        self, pat: A.Pat, source: UTerm, nmu: NMu, env: dict, out: list
    ) -> None:
        """Flatten a tuple pattern into projection bindings."""
        source.nmu = nmu
        if isinstance(pat, A.PVar):
            name = pat.name
            env[name] = MonoBind(nmu)
            out.append((name, source))
            return
        if isinstance(pat, A.PWild):
            return
        assert isinstance(pat, A.PTuple)
        if not pat.elems:
            return
        if len(pat.elems) == 1:
            self._tuple_bindings(pat.elems[0], source, nmu, env, out)
            return
        if not (isinstance(nmu, NBoxed) and isinstance(nmu.tau, NPair)):
            raise RegionInferenceError("tuple pattern against a non-pair type")
        rho = nmu.rho.find()
        # Bind the pair itself to a temp to avoid re-evaluating source.
        tmp = self._fresh_name("t")
        env[tmp] = MonoBind(nmu)
        out.append((tmp, source))
        fst = USelect(1, _var(tmp, nmu))
        fst.nmu = nmu.tau.fst
        fst.eff = {rho}
        snd = USelect(2, _var(tmp, nmu))
        snd.nmu = nmu.tau.snd
        snd.eff = {rho}
        self._tuple_bindings(pat.elems[0], fst, nmu.tau.fst, env, out)
        self._tuple_bindings(
            A.PTuple(pat.elems[1:], line=pat.line, col=pat.col),
            snd, nmu.tau.snd, env, out,
        )

    def _bind_pattern_let(
        self, pat: A.Pat, rhs: UTerm, rest: tuple, env: dict
    ) -> tuple[UTerm, dict]:
        inner_env = dict(env)
        if isinstance(pat, A.PVar):
            inner_env[pat.name] = MonoBind(rhs.nmu)
            body, out_env = self._decs(rest, inner_env)
            let = ULet(pat.name, rhs, body)
            let.nmu = body.nmu
            let.eff = rhs.eff | body.eff
            return let, out_env
        if isinstance(pat, A.PWild) or (isinstance(pat, A.PTuple) and not pat.elems):
            body, out_env = self._decs(rest, inner_env)
            let = ULet(self._fresh_name("w"), rhs, body)
            let.nmu = body.nmu
            let.eff = rhs.eff | body.eff
            return let, out_env
        assert isinstance(pat, A.PTuple)
        bindings: list[tuple[str, UTerm]] = []
        tmp = self._fresh_name("p")
        inner_env[tmp] = MonoBind(rhs.nmu)
        self._tuple_bindings(pat, _var(tmp, rhs.nmu), rhs.nmu, inner_env, bindings)
        # First binding re-binds tmp to itself via `source`; build lets.
        body, out_env = self._decs(rest, inner_env)
        out = body
        for bname, bterm in reversed(bindings):
            let = ULet(bname, bterm, out)
            let.nmu = out.nmu
            let.eff = bterm.eff | out.eff
            out = let
        top = ULet(tmp, rhs, out)
        top.nmu = out.nmu
        top.eff = rhs.eff | out.eff
        return top, out_env

    # -- uses of bindings -----------------------------------------------------------------

    def _use_binding(self, name: str, entry: EnvEntry, hm_inst: Optional[VarInstance] = None) -> UTerm:
        if isinstance(entry, MonoBind):
            term = UVar(name)
            term.nmu = entry.nmu
            return term
        if isinstance(entry, RecBind):
            term = URecUse(name, entry.info)
            term.nmu = entry.info.arrow
            term.eff = {entry.info.rho.find()}
            return term
        assert isinstance(entry, PolyBind)
        info = entry.info
        if not info.is_poly():
            term = UVar(name)
            term.nmu = info.arrow
            return term
        use = self._instantiate(info, hm_inst)
        term = UPolyUse(name, use)
        term.nmu = use.arrow
        term.eff = {use.rho_use.find(), info.rho.find()}
        return term

    def _instantiate(self, info: FunInfo, hm_inst: Optional[VarInstance]) -> UseInfo:
        rho_map: dict = {}
        eps_map: dict = {}
        ty_map: dict = {}
        mapping = hm_inst.mapping if hm_inst is not None else {}
        for q in info.hm_qvars:
            inst_ml = mapping.get(q.ident)
            if inst_ml is None:
                # The occurrence predates generalization (shouldn't happen
                # for PolyBind) or the variable is phantom: identity.
                ty_map[q] = NVar(q)
            else:
                ty_map[q] = self.spread_type(zonk(inst_ml))
        arrow = copy_nmu(info.arrow, rho_map, eps_map, ty_map, self.supply, self.level)
        # Make sure every bound node has a copy (delta nodes may be
        # unreachable from the type when the spurious variable's effect
        # only shows up in an inner helper).
        for eps in info.evars:
            eps = eps.find()
            if eps not in eps_map:
                copy_nmu(NBoxed(NArrow(NBase("unit"), eps, NBase("unit")),
                                self.supply.rho_top),
                         rho_map, eps_map, ty_map, self.supply, self.level)
        for rho in info.rvars:
            rho = rho.find()
            if rho not in rho_map:
                rho_map[rho] = self.supply.fresh_rho(self.level)

        # Every quantified type variable of the scheme counts as one
        # instantiation (the denominator of Figure 9's `inst` column).
        self.stats.total_tyvar_instantiations += len(info.hm_qvars)

        # Coverage constraints (the paper's novelty; skipped by rg-).
        for tv, eps in info.delta.items():
            eps = eps.find()
            target = eps_map.get(eps, eps)  # free spurious eps stay shared
            inst_nmu = ty_map.get(tv)
            if inst_nmu is None:
                continue
            atoms = set(frev_nodes(inst_nmu))
            for inner_tv in tyvars_of_nmu(inst_nmu):
                inner_eps = self._spurious_eps_for(inner_tv)
                if inner_eps is not None:
                    atoms.add(inner_eps.find())
            target.add(a.find() for a in atoms)
            if isinstance(inst_nmu, NBoxed):
                self.stats.spurious_boxed_instantiations += 1

        assert isinstance(arrow, NBoxed)
        rho_use = arrow.rho
        if not rho_map and not eps_map:
            # Purely type-level instantiation still needs a use region for
            # the specialised closure.
            rho_use = self.supply.fresh_rho(self.level)
            arrow = NBoxed(arrow.tau, rho_use)
        else:
            rho_use = self.supply.fresh_rho(self.level)
            arrow = NBoxed(arrow.tau, rho_use)
        return UseInfo(info, rho_use, rho_map, eps_map, ty_map, arrow)

    # -- expressions ---------------------------------------------------------------------

    def exp(self, e: A.Exp, env: dict, expected: Optional[NMu] = None) -> UTerm:
        term = self._exp(e, env, expected)
        assert term.nmu is not None, f"no nmu for {e!r}"
        return term

    def _exp(self, e: A.Exp, env: dict, expected: Optional[NMu] = None) -> UTerm:
        if isinstance(e, A.EAnnot):
            return self._exp(e.exp, env, expected)
        if isinstance(e, A.EInt):
            t = UInt(e.value)
            t.nmu = NBase("int")
            return t
        if isinstance(e, A.EBool):
            t = UBool(e.value)
            t.nmu = NBase("bool")
            return t
        if isinstance(e, A.EUnit):
            t = UUnit()
            t.nmu = NBase("unit")
            return t
        if isinstance(e, A.EString):
            rho = self.supply.fresh_rho(self.level)
            t = UString(e.value, rho)
            t.nmu = NBoxed(NString(), rho)
            t.eff = {rho}
            return t
        if isinstance(e, A.EReal):
            rho = self.supply.fresh_rho(self.level)
            t = UReal(e.value, rho)
            t.nmu = NBoxed(NReal(), rho)
            t.eff = {rho}
            return t
        if isinstance(e, A.ENil):
            t = UNil()
            t.nmu = self.spread_node(e)
            return t
        if isinstance(e, A.EVar):
            return self._var_use(e, env)
        if isinstance(e, A.EApp):
            return self._app(e, env)
        if isinstance(e, A.EFn):
            return self._lambda(e, env, expected)
        if isinstance(e, A.ELet):
            inner_env = env
            # Elaborate declarations with the *expression* as continuation.
            return self._let_exp(e.decs, e.body, inner_env)
        if isinstance(e, A.EIf):
            c = self.exp(e.cond, env)
            th = self._in_scope(env, (), lambda: self.exp(e.then, env))
            el = self._in_scope(env, (), lambda: self.exp(e.els, env))
            unify_nmu(th.nmu, el.nmu)
            t = UIf(c, th, el)
            t.nmu = th.nmu
            t.eff = c.eff | th.eff | el.eff
            return t
        if isinstance(e, A.EPair):
            f = self.exp(e.fst, env)
            s = self.exp(e.snd, env)
            rho = self.supply.fresh_rho(self.level)
            t = UPair(f, s, rho)
            t.nmu = NBoxed(NPair(f.nmu, s.nmu), rho)
            t.eff = f.eff | s.eff | {rho}
            return t
        if isinstance(e, A.ESelect):
            p = self.exp(e.tuple_, env)
            if not (isinstance(p.nmu, NBoxed) and isinstance(p.nmu.tau, NPair)):
                raise RegionInferenceError("#i of a non-pair")
            t = USelect(e.index, p)
            t.nmu = p.nmu.tau.fst if e.index == 1 else p.nmu.tau.snd
            t.eff = p.eff | {p.nmu.rho.find()}
            return t
        if isinstance(e, A.EBinOp):
            return self._binop(e, env)
        if isinstance(e, A.EUnOp):
            return self._unop(e, env)
        if isinstance(e, A.ERaise):
            exn = self.exp(e.exn, env)
            t = URaise(exn)
            t.nmu = self.spread_node(e)
            rho = exn.nmu.rho.find() if isinstance(exn.nmu, NBoxed) else self.supply.rho_top
            t.eff = exn.eff | {rho}
            return t
        if isinstance(e, A.EHandle):
            return self._handle(e, env)
        if isinstance(e, A.ECase):
            return self._case_u(e, env)
        raise RegionInferenceError(f"unknown expression {type(e).__name__}")

    def _let_exp(self, decs: tuple, body_ast: A.Exp, env: dict) -> UTerm:
        if not decs:
            return self.exp(body_ast, env)
        head, rest = decs[0], decs[1:]
        if isinstance(head, A.ValDec):
            rhs_ast = _strip_annot(head.rhs)
            if isinstance(rhs_ast, A.EFn) and isinstance(head.pat, A.PVar):
                return self._function_binding_exp(
                    head.pat.name, rhs_ast.param, rhs_ast.body, head,
                    rest, body_ast, env, recursive_name=None,
                )
            rhs = self._in_scope(env, (), lambda: self.exp(head.rhs, env))
            return self._pattern_let_exp(head.pat, rhs, rest, body_ast, env)
        if isinstance(head, A.FunDec):
            body: A.Exp = head.body
            for p in reversed(head.params[1:]):
                body = A.EFn(p, body, line=head.line, col=head.col)
            return self._function_binding_exp(
                head.name, head.params[0], body, head, rest, body_ast, env,
                recursive_name=head.name,
            )
        if isinstance(head, A.DatatypeDec):
            return self._datatype_dec_u(
                head, lambda: self._let_exp(rest, body_ast, env)
            )
        if isinstance(head, A.ExnDec):
            payload_ml = self.infres.exn_payload[id(head)]
            payload = None
            if payload_ml is not None:
                payload = self.spread_type(zonk(payload_ml))
                self._pin_exception_payload(payload)
            inner_env = dict(env)
            inner_env[head.name] = ExnBind(payload)
            inner = self._let_exp(rest, body_ast, inner_env)
            t = ULetExn(head.name, payload, inner)
            t.nmu = inner.nmu
            t.eff = set(inner.eff)
            return t
        raise RegionInferenceError(f"unknown let declaration {head!r}")

    def _pattern_let_exp(
        self, pat: A.Pat, rhs: UTerm, rest: tuple, body_ast: A.Exp, env: dict
    ) -> UTerm:
        inner_env = dict(env)
        if isinstance(pat, A.PVar):
            inner_env[pat.name] = MonoBind(rhs.nmu)
            body = self._let_exp(rest, body_ast, inner_env)
            let = ULet(pat.name, rhs, body)
            let.nmu = body.nmu
            let.eff = rhs.eff | body.eff
            return let
        if isinstance(pat, A.PWild) or (isinstance(pat, A.PTuple) and not pat.elems):
            body = self._let_exp(rest, body_ast, inner_env)
            let = ULet(self._fresh_name("w"), rhs, body)
            let.nmu = body.nmu
            let.eff = rhs.eff | body.eff
            return let
        assert isinstance(pat, A.PTuple)
        bindings: list[tuple[str, UTerm]] = []
        tmp = self._fresh_name("p")
        inner_env[tmp] = MonoBind(rhs.nmu)
        self._tuple_bindings(pat, _var(tmp, rhs.nmu), rhs.nmu, inner_env, bindings)
        body = self._let_exp(rest, body_ast, inner_env)
        out = body
        for bname, bterm in reversed(bindings):
            let = ULet(bname, bterm, out)
            let.nmu = out.nmu
            let.eff = bterm.eff | out.eff
            out = let
        top = ULet(tmp, rhs, out)
        top.nmu = out.nmu
        top.eff = rhs.eff | out.eff
        return top

    def _function_binding_exp(
        self,
        name: str,
        param_pat: A.Pat,
        body_ast: A.Exp,
        dec: A.Dec,
        rest: tuple,
        let_body_ast: A.Exp,
        env: dict,
        recursive_name: Optional[str],
    ) -> UTerm:
        # Reuse _function_binding by packaging the continuation.
        term, _ = self._function_binding_generic(
            name, param_pat, body_ast, dec, env, recursive_name,
            lambda new_env: self._let_exp(rest, let_body_ast, new_env),
        )
        return term

    def _function_binding(
        self, name, param_pat, body_ast, dec, rest, env, recursive_name
    ):
        out_env_box: list = []

        def cont(new_env: dict) -> UTerm:
            body, out_env = self._decs(rest, new_env)
            out_env_box.append(out_env)
            return body

        term, new_env = self._function_binding_generic(
            name, param_pat, body_ast, dec, env, recursive_name, cont
        )
        return term, (out_env_box[0] if out_env_box else new_env)

    def _function_binding_generic(
        self, name, param_pat, body_ast, dec, env, recursive_name, cont
    ):
        scheme = self.infres.binding_scheme[id(dec)]
        outer_level = self.level
        self.level += 1  # the scheme's own nodes live at this level
        for q in scheme.qvars:
            self.qvar_level[q.ident] = self.level

        fun_ml = zonk(scheme.body)
        arrow_spread = self.spread_type(fun_ml)
        if not (isinstance(arrow_spread, NBoxed) and isinstance(arrow_spread.tau, NArrow)):
            raise RegionInferenceError(f"fun {name}: non-arrow type")
        rho_f = self.supply.fresh_rho(outer_level)
        arrow_nmu = NBoxed(arrow_spread.tau, rho_f)

        info = FunInfo(
            fname=name, param="__p", rho=rho_f, arrow=arrow_nmu,
            hm_qvars=tuple(scheme.qvars),
        )
        inner_env = dict(env)
        if recursive_name is not None:
            inner_env[recursive_name] = RecBind(info)
        param_name, wrap = self._pattern_binder(param_pat, arrow_nmu.tau.dom, inner_env)
        info.param = param_name

        def body_fn() -> UTerm:
            b = self.exp(body_ast, inner_env, expected=arrow_nmu.tau.cod)
            unify_nmu(b.nmu, arrow_nmu.tau.cod)
            return b

        body = self._in_scope(inner_env, (arrow_nmu,), body_fn)
        if wrap is not None:
            body = wrap(body)
        info.body = body
        info.recursive = (
            recursive_name is not None
            and recursive_name in u_fpv(body, frozenset({param_name}))
        )
        info.eps_arrow.add(a.find() for a in body.eff)
        self._gc_closure(
            body, frozenset({param_name, name}), arrow_nmu, inner_env, info.eps_arrow
        )

        self.level -= 1
        self._generalize(info)
        self.stats.total_functions += 1
        if info.delta:
            self.stats.spurious_functions += 1
            self.stats.spurious_function_names.append(name)

        fun_term = UFunDef(info)
        fun_term.nmu = arrow_nmu
        fun_term.eff = {rho_f.find()}

        new_env = dict(env)
        new_env[name] = PolyBind(info)
        rest_term = cont(new_env)
        let = ULet(name, fun_term, rest_term)
        let.nmu = rest_term.nmu
        let.eff = fun_term.eff | rest_term.eff
        return let, new_env

    # -- variable uses, builtins, application -----------------------------------------------

    def _var_use(self, e: A.EVar, env: dict) -> UTerm:
        if id(e) in self.infres.data_con_use:
            return self._data_con_value(e, env)
        if id(e) in self.infres.con_use:
            # Exception constructor used as a value.
            return self._con_value(e, env)
        entry = env.get(e.name)
        inst = self.infres.var_instance.get(id(e))
        if entry is None:
            builtin = BUILTINS.get(e.name)
            if builtin is not None:
                return self._builtin_value(e, builtin, env)
            raise RegionInferenceError(f"unbound variable {e.name}")
        if isinstance(entry, ExnBind):
            return self._con_value(e, env)
        return self._use_binding(e.name, entry, inst)

    def _builtin_value(self, e: A.EVar, builtin: Builtin, env: dict) -> UTerm:
        """A built-in used as a first-class value: eta-expand."""
        nmu = self.spread_node(e)  # the instance arrow type
        assert isinstance(nmu, NBoxed) and isinstance(nmu.tau, NArrow)
        x = self._fresh_name("b")
        arg = _var(x, nmu.tau.dom)
        body = self._prim_call(builtin, arg, nmu.tau.cod)
        nmu.tau.eps.add(a.find() for a in body.eff)
        lam = ULam(x, body, nmu.rho)
        lam.nmu = nmu
        lam.eff = {nmu.rho.find()}
        return lam

    def _prim_call(self, builtin: Builtin, arg: UTerm, result_nmu: NMu) -> UTerm:
        # Structural primitives connect the result type to the argument's
        # inner structure — unify so regions flow through.
        if builtin.prim == "hd":
            if not (isinstance(arg.nmu, NBoxed) and isinstance(arg.nmu.tau, NList)):
                raise RegionInferenceError("hd of a non-list")
            unify_nmu(result_nmu, arg.nmu.tau.elem)
        elif builtin.prim == "tl":
            unify_nmu(result_nmu, arg.nmu)
        if builtin.prim == "__ref":
            if isinstance(result_nmu, NBoxed) and isinstance(result_nmu.tau, NRef):
                unify_nmu(result_nmu.tau.content, arg.nmu)
                rho = result_nmu.rho
            else:
                rho = self.supply.fresh_rho(self.level)
            t = URef(arg, rho)
            t.nmu = result_nmu
            t.eff = arg.eff | {rho.find()}
            return t
        rho = None
        eff = set(arg.eff)
        if builtin.prim == "array":
            # array (n, init): the result's element type is the init type.
            if not (isinstance(arg.nmu, NBoxed) and isinstance(arg.nmu.tau, NPair)):
                raise RegionInferenceError("array of a non-pair")
            if isinstance(result_nmu, NBoxed) and isinstance(result_nmu.tau, NArray):
                unify_nmu(result_nmu.tau.elem, arg.nmu.tau.snd)
        elif builtin.prim in ("asub", "aupdate"):
            # sub (a, i) / update (a, (i, v)): reading or writing a slot
            # touches the array's own region, which sits one pair level
            # below the argument — add it to the effect explicitly so
            # letregion cannot deallocate a live array.
            if not (isinstance(arg.nmu, NBoxed) and isinstance(arg.nmu.tau, NPair)):
                raise RegionInferenceError(f"{builtin.prim} of a non-pair")
            arr_nmu = arg.nmu.tau.fst
            if not (isinstance(arr_nmu, NBoxed) and isinstance(arr_nmu.tau, NArray)):
                raise RegionInferenceError(f"{builtin.prim} of a non-array")
            eff.add(arr_nmu.rho.find())
            if builtin.prim == "asub":
                unify_nmu(result_nmu, arr_nmu.tau.elem)
            else:
                v_nmu = arg.nmu.tau.snd
                if not (isinstance(v_nmu, NBoxed) and isinstance(v_nmu.tau, NPair)):
                    raise RegionInferenceError("update of a non-triple")
                unify_nmu(v_nmu.tau.snd, arr_nmu.tau.elem)
        if builtin.allocates:
            if isinstance(result_nmu, NBoxed):
                rho = result_nmu.rho
            else:
                rho = self.supply.fresh_rho(self.level)
            eff.add(rho.find())
        if isinstance(arg.nmu, NBoxed):
            eff.add(arg.nmu.rho.find())
        t = UPrim(builtin.prim, (arg,), rho)
        t.nmu = result_nmu
        t.eff = eff
        return t

    def _app(self, e: A.EApp, env: dict) -> UTerm:
        fn_ast = _strip_annot(e.fn)
        # Saturated builtin, exception, or datatype constructor applications.
        if isinstance(fn_ast, A.EVar):
            if id(fn_ast) in self.infres.data_con_use:
                return self._data_con_apply(e, fn_ast, env)
            if id(fn_ast) in self.infres.con_use or isinstance(env.get(fn_ast.name), ExnBind):
                arg = self.exp(e.arg, env)
                return self._con_apply(fn_ast.name, arg, env)
            if fn_ast.name not in env and fn_ast.name in BUILTINS:
                builtin = BUILTINS[fn_ast.name]
                arg = self.exp(e.arg, env)
                result_nmu = self.spread_node(e)
                term = self._prim_call(builtin, arg, result_nmu)
                return term
        fn = self.exp(e.fn, env)
        arg = self.exp(e.arg, env)
        if not (isinstance(fn.nmu, NBoxed) and isinstance(fn.nmu.tau, NArrow)):
            raise RegionInferenceError("application of a non-function")
        unify_nmu(arg.nmu, fn.nmu.tau.dom)
        t = UApp(fn, arg)
        t.nmu = fn.nmu.tau.cod
        t.eff = fn.eff | arg.eff | {fn.nmu.tau.eps.find(), fn.nmu.rho.find()}
        return t

    def _con_value(self, e: A.EVar, env: dict) -> UTerm:
        entry = env.get(e.name)
        if not isinstance(entry, ExnBind):
            raise RegionInferenceError(f"{e.name} is not an exception")
        if entry.payload is None:
            t = UCon(e.name, None, self.supply.rho_top)
            t.nmu = NBoxed(NExn(), self.supply.rho_top)
            t.eff = {self.supply.rho_top}
            return t
        # Unary constructor as a value: eta-expand.
        x = self._fresh_name("c")
        arg = _var(x, entry.payload)
        con = UCon(e.name, arg, self.supply.rho_top)
        con.nmu = NBoxed(NExn(), self.supply.rho_top)
        con.eff = {self.supply.rho_top}
        nmu = self.spread_node(e)
        assert isinstance(nmu, NBoxed) and isinstance(nmu.tau, NArrow)
        unify_nmu(nmu.tau.dom, entry.payload)
        unify_nmu(nmu.tau.cod, con.nmu)
        nmu.tau.eps.add(con.eff)
        lam = ULam(x, con, nmu.rho)
        lam.nmu = nmu
        lam.eff = {nmu.rho.find()}
        return lam

    def _con_apply(self, name: str, arg: UTerm, env: dict) -> UTerm:
        entry = env.get(name)
        if not isinstance(entry, ExnBind) or entry.payload is None:
            raise RegionInferenceError(f"bad exception application {name}")
        unify_nmu(arg.nmu, entry.payload)
        t = UCon(name, arg, self.supply.rho_top)
        t.nmu = NBoxed(NExn(), self.supply.rho_top)
        t.eff = arg.eff | {self.supply.rho_top}
        return t

    def _lambda(self, e: A.EFn, env: dict, expected: Optional[NMu] = None) -> UTerm:
        ml = self.infres.node_type.get(id(e))
        if ml is not None:
            nmu = self.spread_type(zonk(ml))
        elif expected is not None:
            # A lambda synthesized by the currying desugaring: its type is
            # the appropriate suffix of the enclosing function's arrow.
            nmu = expected
        else:
            raise RegionInferenceError("fn without a recorded or expected type")
        if not (isinstance(nmu, NBoxed) and isinstance(nmu.tau, NArrow)):
            raise RegionInferenceError("fn with a non-arrow type")
        inner_env = dict(env)
        param_name, wrap = self._pattern_binder(e.param, nmu.tau.dom, inner_env)

        def body_fn() -> UTerm:
            b = self.exp(e.body, inner_env, expected=nmu.tau.cod)
            unify_nmu(b.nmu, nmu.tau.cod)
            return b

        body = self._in_scope(inner_env, (nmu,), body_fn)
        if wrap is not None:
            body = wrap(body)
        nmu.tau.eps.add(a.find() for a in body.eff)
        self._gc_closure(body, frozenset({param_name}), nmu, inner_env, nmu.tau.eps)
        self.stats.total_functions += 1
        lam = ULam(param_name, body, nmu.rho)
        lam.nmu = nmu
        lam.eff = {nmu.rho.find()}
        return lam

    def _handle(self, e: A.EHandle, env: dict) -> UTerm:
        body = self._in_scope(env, (), lambda: self.exp(e.body, env))
        entry = env.get(e.exname)
        if not isinstance(entry, ExnBind):
            raise RegionInferenceError(f"handler for non-exception {e.exname}")
        inner_env = dict(env)
        binder = None
        if e.pat is not None:
            if entry.payload is None:
                raise RegionInferenceError(f"{e.exname} carries no payload")
            if isinstance(e.pat, A.PVar):
                binder = e.pat.name
                inner_env[binder] = MonoBind(entry.payload)
            elif isinstance(e.pat, A.PWild):
                binder = self._fresh_name("h")
                inner_env[binder] = MonoBind(entry.payload)
            else:
                raise RegionInferenceError("handler patterns must be variables")
        handler = self._in_scope(inner_env, (), lambda: self.exp(e.handler, inner_env))
        unify_nmu(body.nmu, handler.nmu)
        t = UHandle(body, e.exname, binder, handler)
        t.nmu = body.nmu
        t.eff = body.eff | handler.eff | {self.supply.rho_top}
        return t

    # -- operators ------------------------------------------------------------------------

    def _binop(self, e: A.EBinOp, env: dict) -> UTerm:
        lhs = self.exp(e.lhs, env)
        rhs = self.exp(e.rhs, env)
        op = e.op
        if op == "::":
            if not (isinstance(rhs.nmu, NBoxed) and isinstance(rhs.nmu.tau, NList)):
                raise RegionInferenceError(":: onto a non-list")
            unify_nmu(lhs.nmu, rhs.nmu.tau.elem)
            rho = rhs.nmu.rho
            t = UCons(lhs, rhs, rho)
            t.nmu = rhs.nmu
            t.eff = lhs.eff | rhs.eff | {rho.find()}
            return t
        if op == ":=":
            if not (isinstance(lhs.nmu, NBoxed) and isinstance(lhs.nmu.tau, NRef)):
                raise RegionInferenceError(":= into a non-ref")
            unify_nmu(rhs.nmu, lhs.nmu.tau.content)
            t = UAssign(lhs, rhs)
            t.nmu = NBase("unit")
            t.eff = lhs.eff | rhs.eff | {lhs.nmu.rho.find()}
            return t
        lt = self.type_of(e.lhs)
        is_real = isinstance(lt, TCon) and lt.name == "real"
        is_string = isinstance(lt, TCon) and lt.name == "string"
        eff = set(lhs.eff | rhs.eff)
        for operand in (lhs, rhs):
            if isinstance(operand.nmu, NBoxed):
                eff.add(operand.nmu.rho.find())
        if op in ("+", "-", "*"):
            if is_real:
                rho = self.supply.fresh_rho(self.level)
                name = {"+": "radd", "-": "rsub", "*": "rmul"}[op]
                t = UPrim(name, (lhs, rhs), rho)
                t.nmu = NBoxed(NReal(), rho)
                t.eff = eff | {rho}
                return t
            name = {"+": "add", "-": "sub", "*": "mul"}[op]
            t = UPrim(name, (lhs, rhs))
            t.nmu = NBase("int")
            t.eff = eff
            return t
        if op == "/":
            rho = self.supply.fresh_rho(self.level)
            t = UPrim("rdiv", (lhs, rhs), rho)
            t.nmu = NBoxed(NReal(), rho)
            t.eff = eff | {rho}
            return t
        if op in ("div", "mod"):
            t = UPrim({"div": "div", "mod": "mod"}[op], (lhs, rhs))
            t.nmu = NBase("int")
            t.eff = eff
            return t
        if op == "^":
            rho = self.supply.fresh_rho(self.level)
            t = UPrim("concat", (lhs, rhs), rho)
            t.nmu = NBoxed(NString(), rho)
            t.eff = eff | {rho}
            return t
        if op in ("<", "<=", ">", ">=", "=", "<>"):
            name = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
                    "=": "eq", "<>": "ne"}[op]
            if name in ("eq", "ne"):
                # Structural equality reads the *whole* operand, not just
                # its top box: every region reachable through the type is
                # a get effect, so letregion cannot deallocate a spine
                # that ``=`` is still traversing.
                eff |= rho_nodes(lhs.nmu) | rho_nodes(rhs.nmu)
            t = UPrim(name, (lhs, rhs))
            t.nmu = NBase("bool")
            t.eff = eff
            return t
        raise RegionInferenceError(f"unknown operator {op}")

    def _unop(self, e: A.EUnOp, env: dict) -> UTerm:
        operand = self.exp(e.operand, env)
        if e.op == "~":
            lt = self.type_of(e.operand)
            eff = set(operand.eff)
            if isinstance(operand.nmu, NBoxed):
                eff.add(operand.nmu.rho.find())
            if isinstance(lt, TCon) and lt.name == "real":
                rho = self.supply.fresh_rho(self.level)
                t = UPrim("rneg", (operand,), rho)
                t.nmu = NBoxed(NReal(), rho)
                t.eff = eff | {rho}
                return t
            t = UPrim("neg", (operand,))
            t.nmu = NBase("int")
            t.eff = eff
            return t
        if e.op == "!":
            if not (isinstance(operand.nmu, NBoxed) and isinstance(operand.nmu.tau, NRef)):
                raise RegionInferenceError("! of a non-ref")
            t = UDeref(operand)
            t.nmu = operand.nmu.tau.content
            t.eff = operand.eff | {operand.nmu.rho.find()}
            return t
        raise RegionInferenceError(f"unknown unary operator {e.op}")


def _var(name: str, nmu: NMu) -> UVar:
    v = UVar(name)
    v.nmu = nmu
    return v


def _strip_annot(e: A.Exp) -> A.Exp:
    while isinstance(e, A.EAnnot):
        e = e.exp
    return e


def infer_regions(infres: InferenceResult, flags: CompilerFlags) -> RegionInferenceOutput:
    """Run region inference over a typed program."""
    return _RegionInferencer(infres, flags).run()

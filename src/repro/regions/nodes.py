"""The mutable union-find layer of region inference.

Region inference works on *nodes* — unifiable proxies for region and
effect variables — and on node-level types that mirror
:mod:`repro.core.rtypes` with nodes at the leaves.  The paper's spreading
phase (Section 4.1) creates fresh nodes; the fixpoint phase unifies them;
freezing (:mod:`repro.regions.freeze`) maps canonical nodes to the
immutable variables of the core type system.

Key invariants:

* union takes the minimum *level* (the generalization discipline: a node
  that leaks into an outer scope must not be quantified there);
* unifying two effect nodes merges their latent sets (effects only grow,
  which is what arrow effects are for — Section 3.5);
* a node marked ``top`` is a global region/effect: it absorbs unions and
  is never quantified or letregion-bound.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Union

from ..core.errors import RegionInferenceError

__all__ = [
    "RhoNode",
    "EpsNode",
    "NodeAtom",
    "NodeSupply",
    "unify_rho",
    "unify_eps",
    "closure_of",
]


class RhoNode:
    """A region-variable node."""

    __slots__ = ("ident", "level", "top", "_parent", "_rank", "generalized", "letbound")

    def __init__(self, ident: int, level: int, top: bool = False) -> None:
        self.ident = ident
        self.level = level
        self.top = top
        self._parent: RhoNode | None = None
        self._rank = 0
        self.generalized = False
        self.letbound = False

    def find(self) -> "RhoNode":
        node = self
        while node._parent is not None:
            node = node._parent
        # path compression
        walk = self
        while walk._parent is not None and walk._parent is not node:
            nxt = walk._parent
            walk._parent = node
            walk = nxt
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        root = self.find()
        flags = "g" if root.generalized else ""
        flags += "t" if root.top else ""
        return f"r{root.ident}{('!' + flags) if flags else ''}"


class EpsNode:
    """An effect-variable node with a mutable latent set of atoms."""

    __slots__ = ("ident", "level", "top", "_parent", "_rank", "latent",
                 "generalized", "letbound")

    def __init__(self, ident: int, level: int, top: bool = False) -> None:
        self.ident = ident
        self.level = level
        self.top = top
        self._parent: EpsNode | None = None
        self._rank = 0
        self.latent: set = set()
        self.generalized = False
        self.letbound = False

    def find(self) -> "EpsNode":
        node = self
        while node._parent is not None:
            node = node._parent
        walk = self
        while walk._parent is not None and walk._parent is not node:
            nxt = walk._parent
            walk._parent = node
            walk = nxt
        return node

    def add(self, atoms: Iterable["NodeAtom"]) -> None:
        """Grow this effect's latent set."""
        self.find().latent.update(atoms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        root = self.find()
        return f"e{root.ident}.{{{len(root.latent)}}}"


NodeAtom = Union[RhoNode, EpsNode]


class NodeSupply:
    """Fresh node supply.

    In *trivial* mode (Section 4.1's trivial region-inference algorithm)
    every request returns the global node, so the whole program ends up in
    one region with one effect variable.
    """

    def __init__(self, trivial: bool = False) -> None:
        self._counter = itertools.count(1)
        self.trivial = trivial
        self.rho_top = RhoNode(0, level=0, top=True)
        self.eps_top = EpsNode(0, level=0, top=True)
        self.eps_top.latent.add(self.rho_top)

    def fresh_rho(self, level: int) -> RhoNode:
        if self.trivial:
            return self.rho_top
        return RhoNode(next(self._counter), level)

    def fresh_eps(self, level: int) -> EpsNode:
        if self.trivial:
            return self.eps_top
        return EpsNode(next(self._counter), level)


def unify_rho(a: RhoNode, b: RhoNode) -> RhoNode:
    """Union two region nodes; the global node absorbs."""
    ra, rb = a.find(), b.find()
    if ra is rb:
        return ra
    if ra.generalized or rb.generalized:
        raise RegionInferenceError(
            "attempt to unify a generalized region node — instantiation "
            "should have copied it"
        )
    # Global absorbs; otherwise union by rank.
    if rb.top or (not ra.top and rb._rank > ra._rank):
        ra, rb = rb, ra
    rb._parent = ra
    ra._rank = max(ra._rank, rb._rank + 1)
    ra.level = min(ra.level, rb.level)
    ra.top = ra.top or rb.top
    return ra


def unify_eps(a: EpsNode, b: EpsNode) -> EpsNode:
    """Union two effect nodes, merging latent sets."""
    ra, rb = a.find(), b.find()
    if ra is rb:
        return ra
    if ra.generalized or rb.generalized:
        raise RegionInferenceError(
            "attempt to unify a generalized effect node — instantiation "
            "should have copied it"
        )
    if rb.top or (not ra.top and rb._rank > ra._rank):
        ra, rb = rb, ra
    rb._parent = ra
    ra._rank = max(ra._rank, rb._rank + 1)
    ra.level = min(ra.level, rb.level)
    ra.top = ra.top or rb.top
    ra.latent |= rb.latent
    rb.latent = set()
    return ra


def closure_of(atoms: Iterable[NodeAtom]) -> frozenset:
    """The set of canonical atoms reachable from ``atoms`` through effect
    nodes' latent sets (the transitive effect basis of Section 3.5)."""
    out: set = set()
    stack = [a.find() for a in atoms]
    while stack:
        node = stack.pop()
        if node in out:
            continue
        out.add(node)
        if isinstance(node, EpsNode):
            stack.extend(a.find() for a in node.latent)
    return frozenset(out)

"""Node-level region types: the spreading phase and structural unification.

``spread`` turns a (zonked) ML type into a node-level region type with
fresh region/effect nodes at every constructor — the paper's spreading
phase.  ``unify_nmu`` unifies two node types with the same ML erasure
(which region inference guarantees), merging region and effect nodes.
``copy_nmu`` implements the region/effect part of scheme instantiation:
bound (generalized) nodes are replaced by fresh copies, free nodes are
shared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from ..core.errors import RegionInferenceError
from ..frontend.mltypes import MLType, TCon, TVar, prune
from .nodes import EpsNode, NodeSupply, RhoNode, unify_eps, unify_rho

__all__ = [
    "NMu",
    "NVar",
    "NBase",
    "NBoxed",
    "NTau",
    "NPair",
    "NArrow",
    "NString",
    "NReal",
    "NList",
    "NRef",
    "NArray",
    "NExn",
    "NData",
    "spread",
    "unify_nmu",
    "frev_nodes",
    "rho_nodes",
    "copy_nmu",
    "nmu_of_base",
    "show_nmu",
]


class NMu:
    __slots__ = ()


class NTau:
    __slots__ = ()


@dataclass(eq=False)
class NVar(NMu):
    """A type variable leaf, keyed by the ML unification variable."""

    tvar: TVar


@dataclass(eq=False)
class NBase(NMu):
    kind: str  # int | bool | unit


@dataclass(eq=False)
class NBoxed(NMu):
    tau: NTau
    rho: RhoNode


@dataclass(eq=False)
class NPair(NTau):
    fst: NMu
    snd: NMu


@dataclass(eq=False)
class NArrow(NTau):
    dom: NMu
    eps: EpsNode
    cod: NMu


@dataclass(eq=False)
class NString(NTau):
    pass


@dataclass(eq=False)
class NReal(NTau):
    pass


@dataclass(eq=False)
class NList(NTau):
    elem: NMu


@dataclass(eq=False)
class NRef(NTau):
    content: NMu


@dataclass(eq=False)
class NArray(NTau):
    elem: NMu


@dataclass(eq=False)
class NExn(NTau):
    pass


@dataclass(eq=False)
class NData(NTau):
    """A user datatype: uniform representation (everything concrete in the
    enclosing place; parameters through ``targs``)."""

    name: str
    targs: tuple


_N_BASE = {"int": "int", "bool": "bool", "unit": "unit"}


def nmu_of_base(kind: str) -> NBase:
    return NBase(kind)


def spread(t: MLType, supply: NodeSupply, level: int) -> NMu:
    """Spread an ML type into a node-level region type with fresh nodes.

    Unresolved plain type variables (phantoms that inference never
    constrained, e.g. the element type of an unused ``nil``) stay as
    :class:`NVar` leaves; freezing defaults them.
    """
    t = prune(t)
    if isinstance(t, TVar):
        return NVar(t)
    assert isinstance(t, TCon)
    if t.name in _N_BASE:
        return NBase(t.name)
    if t.name == "string":
        return NBoxed(NString(), supply.fresh_rho(level))
    if t.name == "real":
        return NBoxed(NReal(), supply.fresh_rho(level))
    if t.name == "exn":
        # Exception values always live in the global region (Section 4.4).
        return NBoxed(NExn(), supply.rho_top)
    if t.name == "->":
        dom = spread(t.args[0], supply, level)
        cod = spread(t.args[1], supply, level)
        return NBoxed(NArrow(dom, supply.fresh_eps(level), cod), supply.fresh_rho(level))
    if t.name == "*":
        return NBoxed(
            NPair(spread(t.args[0], supply, level), spread(t.args[1], supply, level)),
            supply.fresh_rho(level),
        )
    if t.name == "list":
        return NBoxed(NList(spread(t.args[0], supply, level)), supply.fresh_rho(level))
    if t.name == "ref":
        return NBoxed(NRef(spread(t.args[0], supply, level)), supply.fresh_rho(level))
    if t.name == "array":
        return NBoxed(NArray(spread(t.args[0], supply, level)), supply.fresh_rho(level))
    # a user datatype
    return NBoxed(
        NData(t.name, tuple(spread(a, supply, level) for a in t.args)),
        supply.fresh_rho(level),
    )


def unify_nmu(a: NMu, b: NMu) -> None:
    """Unify two node types with the same erasure."""
    if a is b:
        return
    if isinstance(a, NVar) and isinstance(b, NVar):
        if prune(a.tvar) is prune(b.tvar):
            return
        raise RegionInferenceError(
            "unify_nmu: distinct type variables — erasures differ"
        )
    if isinstance(a, NBase) and isinstance(b, NBase) and a.kind == b.kind:
        return
    if isinstance(a, NBoxed) and isinstance(b, NBoxed):
        unify_rho(a.rho, b.rho)
        ta, tb = a.tau, b.tau
        if isinstance(ta, NPair) and isinstance(tb, NPair):
            unify_nmu(ta.fst, tb.fst)
            unify_nmu(ta.snd, tb.snd)
            return
        if isinstance(ta, NArrow) and isinstance(tb, NArrow):
            unify_eps(ta.eps, tb.eps)
            unify_nmu(ta.dom, tb.dom)
            unify_nmu(ta.cod, tb.cod)
            return
        if type(ta) is type(tb) and isinstance(ta, (NString, NReal, NExn)):
            return
        if isinstance(ta, NList) and isinstance(tb, NList):
            unify_nmu(ta.elem, tb.elem)
            return
        if isinstance(ta, NRef) and isinstance(tb, NRef):
            unify_nmu(ta.content, tb.content)
            return
        if isinstance(ta, NArray) and isinstance(tb, NArray):
            unify_nmu(ta.elem, tb.elem)
            return
        if isinstance(ta, NData) and isinstance(tb, NData) and ta.name == tb.name:
            for x, y in zip(ta.targs, tb.targs):
                unify_nmu(x, y)
            return
    raise RegionInferenceError(
        f"unify_nmu: erasure mismatch between {show_nmu(a)} and {show_nmu(b)}"
    )


def frev_nodes(mu: NMu, out: Optional[set] = None) -> set:
    """The canonical region/effect nodes occurring in a node type
    (non-transitively: effect handles are included, their latent sets are
    expanded by :func:`repro.regions.nodes.closure_of` when needed)."""
    if out is None:
        out = set()
    if isinstance(mu, (NVar, NBase)):
        return out
    assert isinstance(mu, NBoxed)
    out.add(mu.rho.find())
    tau = mu.tau
    if isinstance(tau, NPair):
        frev_nodes(tau.fst, out)
        frev_nodes(tau.snd, out)
    elif isinstance(tau, NArrow):
        out.add(tau.eps.find())
        frev_nodes(tau.dom, out)
        frev_nodes(tau.cod, out)
    elif isinstance(tau, NList):
        frev_nodes(tau.elem, out)
    elif isinstance(tau, NRef):
        frev_nodes(tau.content, out)
    elif isinstance(tau, NArray):
        frev_nodes(tau.elem, out)
    elif isinstance(tau, NData):
        for a in tau.targs:
            frev_nodes(a, out)
    return out


def rho_nodes(mu: NMu) -> set:
    return {n for n in frev_nodes(mu) if isinstance(n, RhoNode)}


def tyvars_of_nmu(mu: NMu, out: Optional[set] = None) -> set:
    """The ML type variables at the leaves (pruned)."""
    if out is None:
        out = set()
    if isinstance(mu, NVar):
        t = prune(mu.tvar)
        if isinstance(t, TVar):
            out.add(t)
        return out
    if isinstance(mu, NBase):
        return out
    assert isinstance(mu, NBoxed)
    tau = mu.tau
    if isinstance(tau, NPair):
        tyvars_of_nmu(tau.fst, out)
        tyvars_of_nmu(tau.snd, out)
    elif isinstance(tau, NArrow):
        tyvars_of_nmu(tau.dom, out)
        tyvars_of_nmu(tau.cod, out)
    elif isinstance(tau, (NList, NArray)):
        tyvars_of_nmu(tau.elem, out)
    elif isinstance(tau, NRef):
        tyvars_of_nmu(tau.content, out)
    elif isinstance(tau, NData):
        for a in tau.targs:
            tyvars_of_nmu(a, out)
    return out


def copy_nmu(
    mu: NMu,
    rho_map: dict,
    eps_map: dict,
    ty_map: dict,
    supply: NodeSupply,
    level: int,
) -> NMu:
    """Instantiation copy: generalized nodes found in ``rho_map``/``eps_map``
    are replaced (creating fresh nodes on demand), free nodes are shared.
    Type-variable leaves are replaced via ``ty_map`` (keyed by pruned ML
    tyvar) with already-spread instance types.
    """

    def rho_of(r: RhoNode) -> RhoNode:
        r = r.find()
        if r.generalized:
            if r not in rho_map:
                rho_map[r] = supply.fresh_rho(level)
            return rho_map[r]
        return r

    def eps_of(e: EpsNode) -> EpsNode:
        e = e.find()
        if e.generalized:
            if e not in eps_map:
                fresh = supply.fresh_eps(level)
                eps_map[e] = fresh
                # Copy the latent set, mapping bound atoms recursively.
                for atom in list(e.latent):
                    atom = atom.find()
                    if isinstance(atom, RhoNode):
                        fresh.latent.add(rho_of(atom))
                    else:
                        fresh.latent.add(eps_of(atom))
            return eps_map[e]
        return e

    def go(m: NMu) -> NMu:
        if isinstance(m, NVar):
            t = prune(m.tvar)
            if isinstance(t, TVar) and t in ty_map:
                return ty_map[t]
            return m
        if isinstance(m, NBase):
            return m
        assert isinstance(m, NBoxed)
        tau = m.tau
        if isinstance(tau, NPair):
            new_tau: NTau = NPair(go(tau.fst), go(tau.snd))
        elif isinstance(tau, NArrow):
            new_tau = NArrow(go(tau.dom), eps_of(tau.eps), go(tau.cod))
        elif isinstance(tau, NList):
            new_tau = NList(go(tau.elem))
        elif isinstance(tau, NRef):
            new_tau = NRef(go(tau.content))
        elif isinstance(tau, NArray):
            new_tau = NArray(go(tau.elem))
        elif isinstance(tau, NData):
            new_tau = NData(tau.name, tuple(go(a) for a in tau.targs))
        else:
            new_tau = tau
        return NBoxed(new_tau, rho_of(m.rho))

    return go(mu)


def show_nmu(mu: NMu) -> str:  # pragma: no cover - debugging aid
    if isinstance(mu, NVar):
        return f"'{prune(mu.tvar)!r}"
    if isinstance(mu, NBase):
        return mu.kind
    assert isinstance(mu, NBoxed)
    tau = mu.tau
    if isinstance(tau, NPair):
        return f"({show_nmu(tau.fst)}*{show_nmu(tau.snd)},{tau!r})"
    if isinstance(tau, NArrow):
        return f"({show_nmu(tau.dom)} -{tau.eps!r}-> {show_nmu(tau.cod)},{mu.rho!r})"
    if isinstance(tau, NString):
        return f"(string,{mu.rho!r})"
    if isinstance(tau, NReal):
        return f"(real,{mu.rho!r})"
    if isinstance(tau, NList):
        return f"({show_nmu(tau.elem)} list,{mu.rho!r})"
    if isinstance(tau, NRef):
        return f"({show_nmu(tau.content)} ref,{mu.rho!r})"
    if isinstance(tau, NArray):
        return f"({show_nmu(tau.elem)} array,{mu.rho!r})"
    if isinstance(tau, NExn):
        return f"(exn,{mu.rho!r})"
    if isinstance(tau, NData):
        return f"({tau.name},{mu.rho!r})"
    return "?"

"""Freezing: from mutable inference nodes to the immutable core language.

After pass 1 (:mod:`repro.regions.infer`) all unification is done and all
letregion decisions are recorded on the use-level terms.  Freezing:

* maps every canonical region/effect node to a
  :class:`~repro.core.effects.RegionVar`/:class:`~repro.core.effects.EffectVar`;
* computes each effect variable's *closed* latent set (the transitive
  effect basis of Section 3.5), which becomes its
  :class:`~repro.core.effects.ArrowEffect`;
* converts node types to core types (unconstrained phantom type
  variables default to ``int``);
* emits ``letregion`` for the discharged atoms recorded during pass 1
  (a node with only effect variables to discharge becomes an empty
  ``letregion``, which the type checker uses to drop local effect
  variables and the runtime ignores);
* builds the instantiation substitutions recorded on every region
  application, which is what lets the Figure 4 checker re-verify the
  instance-of relation (including coverage) downstream.
"""

from __future__ import annotations

from typing import Optional

from ..core import terms as T
from ..core.effects import ArrowEffect, EffectVar, RegionVar
from ..core.errors import RegionInferenceError
from ..core.rtypes import (
    MU_BOOL,
    MU_INT,
    MU_UNIT,
    Mu,
    MuBoxed,
    MuVar,
    PiScheme,
    Scheme,
    TAU_EXN,
    TAU_REAL,
    TAU_STRING,
    TauArray,
    TauArrow,
    TauList,
    TauPair,
    TauRef,
    TyCtx,
    TyVar,
)
from ..core.substitution import Subst
from ..frontend.mltypes import prune
from .nodes import EpsNode, RhoNode, closure_of
from .ntypes import (
    NArray,
    NArrow,
    NBase,
    NBoxed,
    NData,
    NExn,
    NList,
    NMu,
    NPair,
    NReal,
    NRef,
    NString,
    NVar,
)
from . import infer as I

__all__ = ["Freezer", "freeze_program"]


class Freezer:
    def __init__(self, output: I.RegionInferenceOutput) -> None:
        self.out = output
        self._rho: dict[RhoNode, RegionVar] = {}
        self._eps: dict[EpsNode, EffectVar] = {}
        self._tyvar: dict[int, TyVar] = {}
        self._closed: dict[EpsNode, frozenset] = {}
        self._pi: dict[int, PiScheme] = {}

    # -- variables ------------------------------------------------------------

    def rho(self, node: RhoNode) -> RegionVar:
        node = node.find()
        var = self._rho.get(node)
        if var is None:
            if node.top or not (node.letbound or node.generalized):
                # A region bound by no letregion and quantified by no
                # scheme is global: top-level values (the program result,
                # module-level bindings) live in the global region, as in
                # the MLKit.  Region substitution closure (Prop. 11) makes
                # the merge sound for the checker.
                var = RegionVar(0, "rtop", top=True)
            else:
                var = RegionVar(node.ident, f"r{node.ident}", top=node.top)
            self._rho[node] = var
        return var

    def eps(self, node: EpsNode) -> EffectVar:
        node = node.find()
        var = self._eps.get(node)
        if var is None:
            var = EffectVar(node.ident, f"e{node.ident}", top=node.top)
            self._eps[node] = var
        return var

    def atom(self, node):
        return self.rho(node) if isinstance(node, RhoNode) else self.eps(node)

    def closed_latent(self, node: EpsNode) -> frozenset:
        """The transitively closed latent set of an effect node, as core
        atoms.  The handle itself stays in the set when it is reachable
        from its own latent contents — the self-referential arrow effects
        that recursive functions produce (their bodies apply the arrow
        they are annotated with)."""
        node = node.find()
        cached = self._closed.get(node)
        if cached is None:
            atoms = closure_of(node.latent)
            cached = frozenset(self.atom(a) for a in atoms)
            self._closed[node] = cached
        return cached

    def arrow_effect(self, node: EpsNode) -> ArrowEffect:
        return ArrowEffect(self.eps(node), self.closed_latent(node))

    def tyvar(self, ml_ident: int) -> TyVar:
        tv = self._tyvar.get(ml_ident)
        if tv is None:
            tv = TyVar(ml_ident, f"'t{ml_ident}")
            self._tyvar[ml_ident] = tv
        return tv

    # -- types ----------------------------------------------------------------

    def mu(self, nmu: NMu) -> Mu:
        if isinstance(nmu, NVar):
            t = prune(nmu.tvar)
            if hasattr(t, "ident") and t.ident in self._tyvar:
                return MuVar(self._tyvar[t.ident])
            # A phantom: unconstrained by the whole program, safely int.
            return MU_INT
        if isinstance(nmu, NBase):
            return {"int": MU_INT, "bool": MU_BOOL, "unit": MU_UNIT}[nmu.kind]
        assert isinstance(nmu, NBoxed)
        tau = nmu.tau
        if isinstance(tau, NPair):
            out = TauPair(self.mu(tau.fst), self.mu(tau.snd))
        elif isinstance(tau, NArrow):
            out = TauArrow(self.mu(tau.dom), self.arrow_effect(tau.eps), self.mu(tau.cod))
        elif isinstance(tau, NString):
            out = TAU_STRING
        elif isinstance(tau, NReal):
            out = TAU_REAL
        elif isinstance(tau, NList):
            out = TauList(self.mu(tau.elem))
        elif isinstance(tau, NRef):
            out = TauRef(self.mu(tau.content))
        elif isinstance(tau, NArray):
            out = TauArray(self.mu(tau.elem))
        elif isinstance(tau, NExn):
            out = TAU_EXN
        elif isinstance(tau, NData):
            from ..core.rtypes import TauData

            out = TauData(tau.name, tuple(self.mu(a) for a in tau.targs))
        else:
            raise RegionInferenceError(f"freeze: unknown tau {tau!r}")
        return MuBoxed(out, self.rho(nmu.rho))

    # -- schemes -----------------------------------------------------------------

    def pi_of(self, info: I.FunInfo) -> PiScheme:
        cached = self._pi.get(id(info))
        if cached is not None:
            return cached
        # Register bound type variables before freezing the body type.
        tvars = tuple(
            self.tyvar(tv.ident) for tv in sorted(info.tvars, key=lambda v: v.ident)
        )
        delta_items = []
        for tv, eps in sorted(info.delta.items(), key=lambda kv: kv[0].ident):
            delta_items.append((self.tyvar(tv.ident), self.arrow_effect(eps)))
        body_mu = self.mu(info.arrow)
        assert isinstance(body_mu, MuBoxed) and isinstance(body_mu.tau, TauArrow)
        scheme = Scheme(
            rvars=tuple(self.rho(r) for r in info.rvars),
            evars=tuple(self.eps(e) for e in info.evars),
            tvars=tvars,
            delta=TyCtx(delta_items),
            body=body_mu.tau,
        )
        pi = PiScheme(scheme, self.rho(info.rho))
        self._pi[id(info)] = pi
        return pi

    # -- terms ----------------------------------------------------------------------

    def term(self, u: I.UTerm) -> T.Term:
        inner = self._term(u)
        if u.local_atoms:
            rhos = tuple(
                self.rho(a)
                for a in sorted(
                    (x for x in u.local_atoms if isinstance(x, RhoNode)),
                    key=lambda n: n.ident,
                )
            )
            # An empty letregion still discharges local effect variables.
            inner = T.Letregion(rhos, inner)
        return inner

    def _term(self, u: I.UTerm) -> T.Term:
        if isinstance(u, I.UVar):
            return T.Var(u.name)
        if isinstance(u, I.URecUse):
            return self._rec_use(u)
        if isinstance(u, I.UPolyUse):
            return self._poly_use(u)
        if isinstance(u, I.UInt):
            return T.IntLit(u.value)
        if isinstance(u, I.UBool):
            return T.BoolLit(u.value)
        if isinstance(u, I.UUnit):
            return T.UnitLit()
        if isinstance(u, I.UString):
            return T.StringLit(u.value, self.rho(u.rho))
        if isinstance(u, I.UReal):
            return T.RealLit(u.value, self.rho(u.rho))
        if isinstance(u, I.UNil):
            return T.NilLit(self.mu(u.nmu))
        if isinstance(u, I.ULam):
            mu = self.mu(u.nmu)
            assert isinstance(mu, MuBoxed)
            return T.Lam(u.param, self.term(u.body), self.rho(u.rho), mu)
        if isinstance(u, I.UFunDef):
            return self._fundef(u.info)
        if isinstance(u, I.UApp):
            return T.App(self.term(u.fn), self.term(u.arg))
        if isinstance(u, I.ULet):
            return T.Let(u.name, self.term(u.rhs), self.term(u.body))
        if isinstance(u, I.UPair):
            return T.Pair(self.term(u.fst), self.term(u.snd), self.rho(u.rho))
        if isinstance(u, I.USelect):
            return T.Select(u.index, self.term(u.pair))
        if isinstance(u, I.UCons):
            return T.Cons(self.term(u.head), self.term(u.tail), self.rho(u.rho))
        if isinstance(u, I.UIf):
            return T.If(self.term(u.cond), self.term(u.then), self.term(u.els))
        if isinstance(u, I.UPrim):
            rho = self.rho(u.rho) if u.rho is not None else None
            return T.Prim(u.op, tuple(self.term(a) for a in u.args), rho)
        if isinstance(u, I.URef):
            return T.MkRef(self.term(u.init), self.rho(u.rho))
        if isinstance(u, I.UDeref):
            return T.Deref(self.term(u.ref))
        if isinstance(u, I.UAssign):
            return T.Assign(self.term(u.ref), self.term(u.value))
        if isinstance(u, I.ULetData):
            return self._letdata(u)
        if isinstance(u, I.UDataCon):
            arg = self.term(u.arg) if u.arg is not None else None
            return T.DataCon(
                u.dataname, u.conname,
                tuple(self.mu(t) for t in u.targs), arg, self.rho(u.rho),
            )
        if isinstance(u, I.UCase):
            return T.Case(
                self.term(u.scrutinee),
                tuple(
                    T.CaseBranchT(conname, binder, self.term(body))
                    for conname, binder, body in u.branches
                ),
            )
        if isinstance(u, I.ULetExn):
            payload = self.mu(u.payload) if u.payload is not None else None
            return T.LetExn(u.exname, payload, self.term(u.body))
        if isinstance(u, I.UCon):
            arg = self.term(u.arg) if u.arg is not None else None
            return T.Con(u.exname, arg, self.rho(u.rho))
        if isinstance(u, I.URaise):
            return T.Raise(self.term(u.exn), self.mu(u.nmu))
        if isinstance(u, I.UHandle):
            return T.Handle(self.term(u.body), u.exname, u.binder, self.term(u.handler))
        raise RegionInferenceError(f"freeze: unknown use-term {type(u).__name__}")

    def _fundef(self, info: I.FunInfo) -> T.FunDef:
        pi = self.pi_of(info)
        body = self.term(info.body)
        return T.FunDef(
            info.fname,
            tuple(self.rho(r) for r in info.rvars),
            info.param,
            body,
            self.rho(info.rho),
            pi,
        )

    def _poly_use(self, u: I.UPolyUse) -> T.RApp:
        info = u.use.info
        self.pi_of(info)  # ensure bound tyvars are registered
        ty = {}
        for tv in list(info.tvars) + list(info.delta.keys()):
            inst_nmu = u.use.ty_map.get(tv)
            if inst_nmu is None:
                raise RegionInferenceError(
                    f"freeze: missing type instance for {tv!r} at a use of {info.fname}"
                )
            ty[self.tyvar(tv.ident)] = self.mu(inst_nmu)
        rgn = {}
        rargs = []
        for r in info.rvars:
            target = u.use.rho_map.get(r.find())
            if target is None:
                raise RegionInferenceError(
                    f"freeze: missing region instance at a use of {info.fname}"
                )
            var = self.rho(target)
            rgn[self.rho(r)] = var
            rargs.append(var)
        eff = {}
        for e in info.evars:
            target = u.use.eps_map.get(e.find())
            if target is None:
                raise RegionInferenceError(
                    f"freeze: missing effect instance at a use of {info.fname}"
                )
            eff[self.eps(e)] = self.arrow_effect(target)
        return T.RApp(
            T.Var(u.name),
            tuple(rargs),
            self.rho(u.use.rho_use),
            Subst(ty=ty, rgn=rgn, eff=eff),
        )

    def _letdata(self, u: I.ULetData) -> T.LetData:
        """Build the core datatype declaration: per-constructor payload
        *templates* over the bound parameters and a placeholder self
        region (the uniform representation)."""
        from ..frontend.mltypes import TCon as MLTCon, TVar as MLTVar, prune as mlprune
        from ..core.rtypes import (
            MU_BOOL as _B, MU_INT as _I, MU_UNIT as _U, TauData,
        )

        info = u.info
        params_core = tuple(self.tyvar(p.ident) for p in info.params)
        param_mu = {
            mlprune(p).ident: MuVar(core)
            for p, core in zip(info.params, params_core)
        }
        if not hasattr(self, "_template_ids"):
            import itertools

            self._template_ids = itertools.count(10_000_000)
        self_rho = RegionVar(next(self._template_ids), f"rself_{info.name}")

        def conv(t):
            t = mlprune(t)
            if isinstance(t, MLTVar):
                return param_mu.get(t.ident, MU_INT)
            assert isinstance(t, MLTCon)
            if t.name == "int":
                return _I
            if t.name == "bool":
                return _B
            if t.name == "unit":
                return _U
            if t.name == "string":
                return MuBoxed(TAU_STRING, self_rho)
            if t.name == "real":
                return MuBoxed(TAU_REAL, self_rho)
            if t.name == "*":
                return MuBoxed(TauPair(conv(t.args[0]), conv(t.args[1])), self_rho)
            if t.name == "list":
                return MuBoxed(TauList(conv(t.args[0])), self_rho)
            if t.name == "ref":
                return MuBoxed(TauRef(conv(t.args[0])), self_rho)
            if t.name == "array":
                return MuBoxed(TauArray(conv(t.args[0])), self_rho)
            if t.name == info.name:
                return MuBoxed(
                    TauData(info.name, tuple(param_mu[mlprune(p).ident]
                                             for p in info.params)),
                    self_rho,
                )
            # another datatype, inlined at the same place
            return MuBoxed(
                TauData(t.name, tuple(conv(a) for a in t.args)), self_rho
            )

        constructors = []
        for cname in info.order:
            payload_ml = info.constructors[cname]
            template = conv(payload_ml) if payload_ml is not None else None
            constructors.append((cname, template))
        return T.LetData(
            info.name, params_core, self_rho, tuple(constructors),
            self.term(u.body),
        )

    def _rec_use(self, u: I.URecUse) -> T.RApp:
        info = u.info
        rargs = tuple(self.rho(r) for r in info.rvars)
        rgn = {self.rho(r): self.rho(r) for r in info.rvars}
        eff = {self.eps(e): self.arrow_effect(e) for e in info.evars}
        return T.RApp(
            T.Var(u.name),
            rargs,
            self.rho(info.rho),
            Subst(ty={}, rgn=rgn, eff=eff),
        )


def freeze_program(output: I.RegionInferenceOutput) -> tuple[T.Term, Freezer]:
    """Freeze pass-1 output into a closed core term."""
    freezer = Freezer(output)
    term = freezer.term(output.root)
    return term, freezer

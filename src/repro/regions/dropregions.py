"""Drop-regions analysis (paper Section 4.2: "dropping of quantified
parameter regions that are not stored into by a function").

A region parameter of a ``fun`` needs to exist at run time only if the
function (or a callee it passes the region to) may *allocate* into it.
Parameters that are only read through can be dropped: the runtime then
skips passing them at every region application.

We keep the type schemes intact (the checker is oblivious to dropping —
it is a pure runtime-representation optimization, as in the MLKit) and
report, per ``FunDef`` *node*, the indices of the droppable parameters;
the runtime attaches the set to each function closure it builds.

The analysis is an interprocedural fixpoint with lexical resolution of
call targets: a parameter is *put into* when it is the target of an
allocation in the body, or when it is passed (via a region application
of a lexically known function) into a parameter position that is itself
put into.  Unknown or higher-order flows are over-approximated: a
parameter that is captured in an inner function's scheme, or passed to a
region application whose target is not a lexically visible ``fun``, is
kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import terms as T
from ..core.effects import RegionVar
from ..core.rtypes import frv

__all__ = ["DropRegionsReport", "analyse_drop_regions"]


@dataclass
class DropRegionsReport:
    """``dropped[id(fundef)]`` is the frozenset of parameter *indices*
    never stored into."""

    dropped: dict = field(default_factory=dict)
    names: dict = field(default_factory=dict)  # id -> fname, for reporting
    total_params: int = 0
    dropped_params: int = 0

    def dropped_indices_for(self, fundef_id: int) -> frozenset:
        return self.dropped.get(fundef_id, frozenset())

    def summary(self) -> str:
        return f"dropped {self.dropped_params}/{self.total_params} region parameters"


def analyse_drop_regions(program: T.Term) -> DropRegionsReport:
    report = DropRegionsReport()

    fundefs: dict[int, T.FunDef] = {}
    #: call sites: (caller id | None for toplevel, callee id, rargs)
    calls: list[tuple[int | None, int, tuple]] = []
    #: put[fid]: parameter RegionVars of fid stored into
    put: dict[int, set] = {}
    #: escaped[fid]: parameters that flow somewhere we cannot track
    escaped: dict[int, set] = {}

    def walk(term: T.Term, scope: dict, owner: int | None) -> None:
        """``scope`` maps lexically visible fun names to fundef ids."""
        if isinstance(term, (T.FunDef, T.VFunClos)):
            fid = id(term)
            fundefs[fid] = term
            put[fid] = set()
            escaped[fid] = set()
            inner_scope = dict(scope)
            inner_scope[term.fname] = fid
            walk(term.body, inner_scope, fid)
            return
        if isinstance(term, T.Let) and isinstance(term.rhs, (T.FunDef, T.VFunClos)):
            walk(term.rhs, scope, owner)
            inner_scope = dict(scope)
            inner_scope[term.name] = id(term.rhs)
            walk(term.body, inner_scope, owner)
            return
        if isinstance(term, T.Let):
            walk(term.rhs, scope, owner)
            inner_scope = dict(scope)
            inner_scope.pop(term.name, None)  # shadowed by a non-fun
            walk(term.body, inner_scope, owner)
            return
        if isinstance(term, T.RApp) and isinstance(term.fn, T.Var):
            callee = scope.get(term.fn.name)
            if callee is not None:
                calls.append((owner, callee, term.rargs))
            else:
                # Unknown target: every passed region may be stored into.
                if owner is not None:
                    escaped[owner].update(term.rargs)
            walk(term.fn, scope, owner)
            return
        if isinstance(term, (T.Lam, T.VClos)):
            walk(term.body, scope, owner)
            return
        for child in T.iter_children(term):
            walk(child, scope, owner)

    walk(program, {}, None)

    # Direct puts.
    for fid, fd in fundefs.items():
        params = set(fd.rparams)

        def direct(term: T.Term) -> None:
            target = _direct_alloc_target(term)
            if target is not None and target in params:
                put[fid].add(target)
            if isinstance(term, (T.FunDef, T.VFunClos)) and id(term) != fid:
                # A parameter captured in an inner function's scheme may be
                # stored into after this call returns: keep it.
                put[fid].update(params & frv(term.pi))
                return  # inner fun analysed separately
            if isinstance(term, (T.Lam, T.VClos)):
                put[fid].update(params & frv(term.mu))
            for child in T.iter_children(term):
                direct(child)

        direct(fd.body)
        put[fid] |= params & escaped.get(fid, set())

    # Interprocedural fixpoint.
    changed = True
    while changed:
        changed = False
        for owner, callee, rargs in calls:
            if owner is None:
                continue
            caller_params = set(fundefs[owner].rparams)
            callee_fd = fundefs[callee]
            for idx, formal in enumerate(callee_fd.rparams):
                if idx >= len(rargs):
                    continue
                if formal in put[callee]:
                    actual = rargs[idx]
                    if actual in caller_params and actual not in put[owner]:
                        put[owner].add(actual)
                        changed = True

    for fid, fd in fundefs.items():
        dropped = frozenset(i for i, r in enumerate(fd.rparams) if r not in put[fid])
        report.total_params += len(fd.rparams)
        report.dropped_params += len(dropped)
        if dropped:
            report.dropped[fid] = dropped
        report.names[fid] = fd.fname
    return report


def _direct_alloc_target(term: T.Term) -> RegionVar | None:
    if isinstance(term, (T.Pair, T.Cons, T.StringLit, T.RealLit, T.Lam,
                         T.FunDef, T.MkRef, T.Con, T.DataCon)):
        return term.rho
    if isinstance(term, T.RApp):
        return term.rho
    if isinstance(term, T.Prim) and term.rho is not None:
        return term.rho
    return None

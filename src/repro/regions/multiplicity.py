"""Multiplicity analysis (paper Section 4.2; Birkedal-Tofte-Vejlstrup's
region representation inference, simplified).

A ``letregion``-bound region is *finite* (stack-allocatable, of statically
known size) when at most one value is put into it per lifetime of the
region — i.e. it has exactly one syntactic allocation site, and that site
is not under a lambda, a recursive function body, or another binder that
could execute the site multiple times within the region's lifetime.
Everything else is *infinite*: a growable list of pages, subject to
reference-tracing collection.

The analysis is a conservative syntactic pass over the frozen core term.
Its output drives the runtime heap (finite regions live on the region
stack and are not collected — their contents are scanned as roots) and
the ablation benchmark ``bench_ablation``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import terms as T
from ..core.effects import RegionVar

__all__ = ["MultiplicityReport", "analyse_multiplicity", "WORDS"]

#: Abstract word sizes of each boxed allocation (8-byte words: a header is
#: implicit in the count where the MLKit would tag; pairs/refs/cons are
#: tag-free under the region-type discipline — Section 6).
WORDS = {
    "pair": 2,
    "cons": 2,
    "real": 1,
    "ref": 1,
    "closure_base": 1,
    "string_base": 1,
    "exn": 2,
}


@dataclass
class MultiplicityReport:
    """Which letregion-bound regions are finite, and their sizes."""

    finite: dict = field(default_factory=dict)      # RegionVar -> words
    infinite: set = field(default_factory=set)      # RegionVar
    #: every letregion-bound region seen
    bound: set = field(default_factory=set)

    def is_finite(self, rho: RegionVar) -> bool:
        return rho in self.finite

    def summary(self) -> str:
        return (
            f"{len(self.finite)} finite / "
            f"{len(self.infinite)} infinite of {len(self.bound)} bound regions"
        )


def _alloc_words(term: T.Term) -> int:
    """Words allocated by one allocation site (static estimate)."""
    if isinstance(term, (T.Pair, T.VPair)):
        return WORDS["pair"]
    if isinstance(term, (T.Cons, T.VCons)):
        return WORDS["cons"]
    if isinstance(term, (T.RealLit, T.VReal)):
        return WORDS["real"]
    if isinstance(term, T.MkRef):
        return WORDS["ref"]
    if isinstance(term, (T.StringLit, T.VStr)):
        return WORDS["string_base"] + (len(term.value) + 7) // 8
    if isinstance(term, (T.Lam, T.FunDef, T.VClos, T.VFunClos)):
        return WORDS["closure_base"] + 4  # closure: code + a few free slots
    if isinstance(term, T.Con):
        return WORDS["exn"]
    return 2


def _alloc_target(term: T.Term) -> RegionVar | None:
    if isinstance(term, (T.Pair, T.Cons, T.StringLit, T.RealLit, T.Lam,
                         T.FunDef, T.MkRef, T.Con, T.DataCon, T.VPair, T.VCons, T.VStr,
                         T.VReal, T.VClos, T.VFunClos)):
        return term.rho
    if isinstance(term, T.RApp):
        return term.rho
    if isinstance(term, T.Prim) and term.rho is not None:
        return term.rho
    return None


def analyse_multiplicity(program: T.Term) -> MultiplicityReport:
    """Classify every ``letregion``-bound region as finite or infinite."""
    report = MultiplicityReport()

    # A site may execute many times within one region lifetime exactly
    # when it sits under more lambda binders than the region's letregion:
    # re-entering the letregion re-creates the region, so equal depth is
    # single-shot; deeper means the enclosing closure can be called
    # repeatedly while the region stays live.
    binding_depth: dict = {}
    counts: dict = {}  # rho -> (sites, words, multi)

    def walk(term: T.Term, depth: int) -> None:
        if isinstance(term, T.Letregion):
            for rho in term.rhos:
                report.bound.add(rho)
                binding_depth[rho] = depth
        rho = _alloc_target(term)
        if rho is not None and rho in binding_depth:
            sites, total, multi = counts.get(rho, (0, 0, False))
            counts[rho] = (
                sites + 1,
                total + _alloc_words(term),
                multi or depth > binding_depth[rho],
            )
        if isinstance(term, (T.Lam, T.VClos, T.FunDef, T.VFunClos)):
            walk(term.body, depth + 1)
            return
        for child in T.iter_children(term):
            walk(child, depth)

    walk(program, 0)

    for rho in report.bound:
        sites, words, multi = counts.get(rho, (0, 0, False))
        if sites <= 1 and not multi:
            report.finite[rho] = max(words, 1)
        else:
            report.infinite.add(rho)
    return report

"""Pretty printer for region-annotated programs, in the paper's notation
(ASCII): ``letregion r1,r2 in e``, ``fn x => e at r3``, ``e [r1,r2] at r0``,
``("oh" ^ "no") at r`` and so on (Figures 2 and 8)."""

from __future__ import annotations

from ..core import terms as T
from ..core.rtypes import show_mu, show_pi, show_scheme

__all__ = ["pretty_term", "pretty_program"]

_INDENT = "  "


def pretty_program(term: T.Term, schemes: bool = True) -> str:
    """Render a whole program."""
    return pretty_term(term, 0, schemes)


def pretty_term(e: T.Term, depth: int = 0, schemes: bool = True) -> str:
    pad = _INDENT * depth
    inner = _INDENT * (depth + 1)
    p = lambda t: pretty_term(t, depth, schemes)  # noqa: E731
    p1 = lambda t: pretty_term(t, depth + 1, schemes)  # noqa: E731

    if isinstance(e, T.Var):
        return e.name
    if isinstance(e, T.IntLit):
        return str(e.value)
    if isinstance(e, T.BoolLit):
        return "true" if e.value else "false"
    if isinstance(e, T.UnitLit):
        return "()"
    if isinstance(e, T.StringLit):
        return f'"{e.value}" at {e.rho.display()}'
    if isinstance(e, T.RealLit):
        return f"{e.value} at {e.rho.display()}"
    if isinstance(e, T.NilLit):
        return "nil"
    if isinstance(e, T.Lam):
        head = f"fn {e.param} at {e.rho.display()} =>"
        return f"({head}\n{inner}{p1(e.body)})"
    if isinstance(e, T.FunDef):
        rparams = ",".join(r.display() for r in e.rparams)
        scheme_line = ""
        if schemes:
            scheme_line = f"{pad}(* {e.fname} : {show_pi(e.pi)} *)\n"
        return (
            f"{scheme_line}fun {e.fname} [{rparams}] {e.param} at "
            f"{e.rho.display()} =\n{inner}{p1(e.body)}"
        )
    if isinstance(e, T.RApp):
        rargs = ",".join(r.display() for r in e.rargs)
        return f"{p(e.fn)} [{rargs}] at {e.rho.display()}"
    if isinstance(e, T.App):
        return f"({p(e.fn)}) ({p(e.arg)})"
    if isinstance(e, T.Let):
        return (
            f"let val {e.name} = {p1(e.rhs)}\n{pad}in {p1(e.body)}\n{pad}end"
        )
    if isinstance(e, T.Letregion):
        rhos = ",".join(r.display() for r in e.rhos)
        if not e.rhos:
            return p(e.body)
        return f"letregion {rhos}\n{pad}in {p1(e.body)}\n{pad}end"
    if isinstance(e, T.Pair):
        return f"({p(e.fst)}, {p(e.snd)}) at {e.rho.display()}"
    if isinstance(e, T.Select):
        return f"#{e.index} {p(e.pair)}"
    if isinstance(e, T.Cons):
        return f"({p(e.head)} :: {p(e.tail)}) at {e.rho.display()}"
    if isinstance(e, T.If):
        return (
            f"if {p(e.cond)}\n{inner}then {p1(e.then)}\n{inner}else {p1(e.els)}"
        )
    if isinstance(e, T.Prim):
        args = ", ".join(p(a) for a in e.args)
        at = f" at {e.rho.display()}" if e.rho is not None else ""
        return f"{e.op}({args}){at}"
    if isinstance(e, T.MkRef):
        return f"ref ({p(e.init)}) at {e.rho.display()}"
    if isinstance(e, T.Deref):
        return f"!({p(e.ref)})"
    if isinstance(e, T.Assign):
        return f"{p(e.ref)} := {p(e.value)}"
    if isinstance(e, T.LetData):
        cons = " | ".join(
            c + (f" of {show_mu(m)}" if m is not None else "")
            for c, m in e.constructors
        )
        params = ",".join(p_.display() for p_ in e.params)
        head = f"datatype ({params}) {e.name}" if params else f"datatype {e.name}"
        return f"{head} = {cons}\n{pad}in {p1(e.body)}"
    if isinstance(e, T.DataCon):
        arg = f" ({p(e.arg)})" if e.arg is not None else ""
        return f"{e.conname}{arg} at {e.rho.display()}"
    if isinstance(e, T.Case):
        brs = []
        for br in e.branches:
            head = br.conname or (br.binder or "_")
            if br.conname and br.binder:
                head = f"{br.conname} {br.binder}"
            brs.append(f"{inner}{head} => {pretty_term(br.body, depth + 2, schemes)}")
        return f"case {p(e.scrutinee)} of\n" + ("\n" + inner + "| ").join(brs)
    if isinstance(e, T.LetExn):
        # Balanced like Let — the surface form is `let exception ... in
        # ... end`, and an unbalanced rendering made shrinker reproducers
        # that embed pretty output fail to round-trip.
        payload = f" of {show_mu(e.payload)}" if e.payload is not None else ""
        return (
            f"let exception {e.exname}{payload}\n"
            f"{pad}in {p1(e.body)}\n{pad}end"
        )
    if isinstance(e, T.Con):
        arg = f" ({p(e.arg)})" if e.arg is not None else ""
        return f"{e.exname}{arg} at {e.rho.display()}"
    if isinstance(e, T.Raise):
        return f"raise {p(e.exn)}"
    if isinstance(e, T.Handle):
        binder = f" {e.binder}" if e.binder else ""
        return f"({p(e.body)}) handle {e.exname}{binder} => {p1(e.handler)}"
    # Values (shown during small-step traces)
    if isinstance(e, T.VInt):
        return str(e.value)
    if isinstance(e, T.VBool):
        return "true" if e.value else "false"
    if isinstance(e, T.VUnit):
        return "()"
    if isinstance(e, T.VNil):
        return "nil"
    if isinstance(e, T.VStr):
        return f'<"{e.value}">^{e.rho.display()}'
    if isinstance(e, T.VReal):
        return f"<{e.value}>^{e.rho.display()}"
    if isinstance(e, T.VPair):
        return f"<{p(e.fst)},{p(e.snd)}>^{e.rho.display()}"
    if isinstance(e, T.VCons):
        return f"<{p(e.head)}::{p(e.tail)}>^{e.rho.display()}"
    if isinstance(e, T.VClos):
        return f"<fn {e.param} => ...>^{e.rho.display()}"
    if isinstance(e, T.VFunClos):
        return f"<fun {e.fname} ...>^{e.rho.display()}"
    raise TypeError(f"pretty_term: {e!r}")
